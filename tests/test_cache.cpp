// Unit and property tests for the cache simulator and hierarchy.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "seed_util.h"

namespace scag::cache {
namespace {

// ---- Single-level cache ------------------------------------------------------

TEST(Cache, MissThenHit) {
  Cache c({4, 2, 64});
  EXPECT_FALSE(c.access(0x1000, AccessType::kLoad, Owner::kAttacker).hit);
  EXPECT_TRUE(c.access(0x1000, AccessType::kLoad, Owner::kAttacker).hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit) {
  Cache c({4, 2, 64});
  c.access(0x1000, AccessType::kLoad, Owner::kAttacker);
  EXPECT_TRUE(c.access(0x103F, AccessType::kLoad, Owner::kAttacker).hit);
  EXPECT_FALSE(c.access(0x1040, AccessType::kLoad, Owner::kAttacker).hit);
}

TEST(Cache, SetIndexMapping) {
  Cache c({4, 2, 64});
  EXPECT_EQ(c.set_index(0x0000), 0u);
  EXPECT_EQ(c.set_index(0x0040), 1u);
  EXPECT_EQ(c.set_index(0x00C0), 3u);
  EXPECT_EQ(c.set_index(0x0100), 0u);  // wraps at num_sets
  EXPECT_EQ(c.line_addr(0x1234), 0x1200u);
}

TEST(Cache, LruEvictsOldest) {
  Cache c({1, 2, 64});  // one set, two ways
  c.access(0x0000, AccessType::kLoad, Owner::kAttacker);   // A
  c.access(0x1000, AccessType::kLoad, Owner::kAttacker);   // B
  c.access(0x0000, AccessType::kLoad, Owner::kAttacker);   // touch A
  const auto out = c.access(0x2000, AccessType::kLoad, Owner::kAttacker);
  EXPECT_TRUE(out.evicted);
  EXPECT_EQ(out.evicted_line_addr, 0x1000u);  // B was LRU
  EXPECT_TRUE(c.probe(0x0000));
  EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, FlushRemovesLine) {
  Cache c({4, 2, 64});
  c.access(0x1000, AccessType::kLoad, Owner::kAttacker);
  EXPECT_TRUE(c.flush(0x1000));
  EXPECT_FALSE(c.probe(0x1000));
  EXPECT_FALSE(c.flush(0x1000));  // already gone
}

TEST(Cache, ProbeDoesNotTouchLru) {
  Cache c({1, 2, 64});
  c.access(0x0000, AccessType::kLoad, Owner::kAttacker);
  c.access(0x1000, AccessType::kLoad, Owner::kAttacker);
  // Probing A must not make it MRU.
  c.probe(0x0000);
  c.access(0x2000, AccessType::kLoad, Owner::kAttacker);
  EXPECT_FALSE(c.probe(0x0000));  // A was still LRU and got evicted
}

TEST(Cache, FillAllReachesFullOccupancy) {
  Cache c({8, 4, 64});
  c.fill_all(Owner::kOther);
  EXPECT_DOUBLE_EQ(c.total_occupancy(), 1.0);
  EXPECT_DOUBLE_EQ(c.occupancy(Owner::kOther), 1.0);
  EXPECT_DOUBLE_EQ(c.occupancy(Owner::kAttacker), 0.0);
}

TEST(Cache, OwnerTracksMostRecentToucher) {
  Cache c({4, 2, 64});
  c.access(0x1000, AccessType::kLoad, Owner::kVictim);
  EXPECT_GT(c.occupancy(Owner::kVictim), 0.0);
  c.access(0x1000, AccessType::kLoad, Owner::kAttacker);
  EXPECT_DOUBLE_EQ(c.occupancy(Owner::kVictim), 0.0);
  EXPECT_GT(c.occupancy(Owner::kAttacker), 0.0);
}

TEST(Cache, SetOccupancyCountsPerSet) {
  Cache c({4, 4, 64});
  // Three same-set lines (stride = num_sets * line = 256).
  c.access(0x0000, AccessType::kLoad, Owner::kAttacker);
  c.access(0x0100, AccessType::kLoad, Owner::kAttacker);
  c.access(0x0200, AccessType::kLoad, Owner::kVictim);
  EXPECT_EQ(c.set_occupancy(0x0000, Owner::kAttacker), 2u);
  EXPECT_EQ(c.set_occupancy(0x0000, Owner::kVictim), 1u);
  EXPECT_EQ(c.set_occupancy(0x0040, Owner::kAttacker), 0u);
}

TEST(Cache, InvalidConfigThrows) {
  EXPECT_THROW(Cache({0, 2, 64}), std::invalid_argument);
  EXPECT_THROW(Cache({4, 0, 64}), std::invalid_argument);
  EXPECT_THROW(Cache({4, 2, 48}), std::invalid_argument);  // not pow2
}

// Property: walking exactly `ways` distinct same-set lines evicts every
// previous occupant of the set, across geometries.
struct Geometry {
  std::uint32_t sets, ways;
};

class EvictionSweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(EvictionSweep, FullSetWalkEvictsPriorContents) {
  const auto [sets, ways] = GetParam();
  Cache c({sets, ways, 64});
  const std::uint64_t stride = static_cast<std::uint64_t>(sets) * 64;
  // Resident line in set 0.
  c.access(0xA000'0000, AccessType::kLoad, Owner::kVictim);
  const std::uint32_t victim_set = c.set_index(0xA000'0000);
  // Walk `ways` distinct lines of that set.
  for (std::uint32_t w = 0; w < ways; ++w) {
    const std::uint64_t addr = static_cast<std::uint64_t>(victim_set) * 64 +
                               static_cast<std::uint64_t>(w) * stride;
    c.access(addr, AccessType::kLoad, Owner::kAttacker);
  }
  EXPECT_FALSE(c.probe(0xA000'0000));
  // And all walked lines are resident.
  for (std::uint32_t w = 0; w < ways; ++w) {
    const std::uint64_t addr = static_cast<std::uint64_t>(victim_set) * 64 +
                               static_cast<std::uint64_t>(w) * stride;
    EXPECT_TRUE(c.probe(addr));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, EvictionSweep,
                         ::testing::Values(Geometry{1, 2}, Geometry{4, 4},
                                           Geometry{64, 8}, Geometry{1024, 16},
                                           Geometry{16, 1}, Geometry{3, 5}),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param.sets) + "w" +
                                  std::to_string(info.param.ways);
                         });

// ---- Replacement policies -------------------------------------------------------

TEST(Policy, FifoIgnoresHits) {
  CacheConfig cfg{1, 2, 64};
  cfg.policy = ReplacementPolicy::kFifo;
  Cache c(cfg);
  c.access(0x0000, AccessType::kLoad, Owner::kAttacker);  // A first in
  c.access(0x1000, AccessType::kLoad, Owner::kAttacker);  // B second
  c.access(0x0000, AccessType::kLoad, Owner::kAttacker);  // touch A (no-op)
  c.access(0x2000, AccessType::kLoad, Owner::kAttacker);  // evicts A anyway
  EXPECT_FALSE(c.probe(0x0000));
  EXPECT_TRUE(c.probe(0x1000));
}

TEST(Policy, PlruRequiresPowerOfTwoWays) {
  CacheConfig cfg{4, 3, 64};
  cfg.policy = ReplacementPolicy::kPlru;
  EXPECT_THROW(Cache{cfg}, std::invalid_argument);
}

TEST(Policy, PlruNeverEvictsMostRecent) {
  CacheConfig cfg{1, 4, 64};
  cfg.policy = ReplacementPolicy::kPlru;
  Cache c(cfg);
  // Fill the set, then alternate hits; the just-touched line must survive
  // every subsequent single eviction.
  for (int i = 0; i < 4; ++i)
    c.access(static_cast<std::uint64_t>(i) * 0x1000, AccessType::kLoad,
             Owner::kAttacker);
  for (int round = 0; round < 8; ++round) {
    const std::uint64_t hot = static_cast<std::uint64_t>(round % 4) * 0x1000;
    if (!c.probe(hot)) c.access(hot, AccessType::kLoad, Owner::kAttacker);
    c.access(hot, AccessType::kLoad, Owner::kAttacker);
    c.access(0x9000 + static_cast<std::uint64_t>(round) * 0x1000,
             AccessType::kLoad, Owner::kAttacker);  // forces one eviction
    EXPECT_TRUE(c.probe(hot)) << "round " << round;
  }
}

TEST(Policy, RandomIsDeterministicPerCacheInstance) {
  CacheConfig cfg{1, 4, 64};
  cfg.policy = ReplacementPolicy::kRandom;
  auto run = [&cfg] {
    Cache c(cfg);
    std::vector<bool> present;
    for (int i = 0; i < 32; ++i)
      c.access(static_cast<std::uint64_t>(i) * 0x1000, AccessType::kLoad,
               Owner::kAttacker);
    for (int i = 24; i < 32; ++i)
      present.push_back(c.probe(static_cast<std::uint64_t>(i) * 0x1000));
    return present;
  };
  EXPECT_EQ(run(), run());
}

TEST(Policy, AllPoliciesFillInvalidWaysFirst) {
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
        ReplacementPolicy::kPlru, ReplacementPolicy::kRandom}) {
    CacheConfig cfg{1, 4, 64};
    cfg.policy = policy;
    Cache c(cfg);
    for (int i = 0; i < 4; ++i) {
      const auto out = c.access(static_cast<std::uint64_t>(i) * 0x1000,
                                AccessType::kLoad, Owner::kAttacker);
      EXPECT_FALSE(out.evicted) << static_cast<int>(policy) << " way " << i;
    }
    // Every filled line is present.
    for (int i = 0; i < 4; ++i)
      EXPECT_TRUE(c.probe(static_cast<std::uint64_t>(i) * 0x1000));
  }
}

// ---- Hierarchy ---------------------------------------------------------------

TEST(Hierarchy, LatencyLadder) {
  CacheHierarchy h;
  const auto miss = h.load(0x5000, Owner::kAttacker);
  EXPECT_FALSE(miss.l1_hit);
  EXPECT_FALSE(miss.llc_hit);
  EXPECT_EQ(miss.latency, h.config().lat_memory);

  const auto hit = h.load(0x5000, Owner::kAttacker);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_EQ(hit.latency, h.config().lat_l1_hit);
}

TEST(Hierarchy, LlcHitAfterL1Eviction) {
  CacheHierarchy h;
  h.load(0x5000, Owner::kAttacker);
  // Thrash the L1 set of 0x5000 with same-L1-set lines that map to
  // DIFFERENT LLC sets, so only L1 loses the line.
  const auto& l1 = h.config().l1d;
  const auto& llc = h.config().llc;
  const std::uint64_t l1_stride =
      static_cast<std::uint64_t>(l1.num_sets) * l1.line_size;
  const std::uint64_t llc_span =
      static_cast<std::uint64_t>(llc.num_sets) * llc.line_size;
  for (std::uint32_t i = 1; i <= l1.ways; ++i) {
    // Offset by llc_span multiples + l1_stride to stay in the same L1 set
    // but spread across LLC sets.
    h.load(0x5000 + i * (llc_span + l1_stride), Owner::kAttacker);
  }
  EXPECT_FALSE(h.probe_l1d(0x5000));
  EXPECT_TRUE(h.probe_llc(0x5000));
  const auto r = h.load(0x5000, Owner::kAttacker);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_TRUE(r.llc_hit);
  EXPECT_EQ(r.latency, h.config().lat_llc_hit);
}

TEST(Hierarchy, FlushClearsAllLevels) {
  CacheHierarchy h;
  h.load(0x6000, Owner::kAttacker);
  const auto f1 = h.flush(0x6000);
  EXPECT_TRUE(f1.flushed_line_was_present);
  EXPECT_EQ(f1.latency, h.config().lat_flush_present);
  EXPECT_FALSE(h.probe_l1d(0x6000));
  EXPECT_FALSE(h.probe_llc(0x6000));
  const auto f2 = h.flush(0x6000);
  EXPECT_FALSE(f2.flushed_line_was_present);
  EXPECT_EQ(f2.latency, h.config().lat_flush_absent);
}

TEST(Hierarchy, FlushLatencyAsymmetryEnablesFlushFlush) {
  // Flush+Flush depends on flushing a present line being slower.
  CacheHierarchy h;
  EXPECT_GT(h.config().lat_flush_present, h.config().lat_flush_absent);
}

TEST(Hierarchy, InclusiveLlcBackInvalidatesL1) {
  CacheHierarchy h;
  h.load(0x7000, Owner::kVictim);
  ASSERT_TRUE(h.probe_l1d(0x7000));
  // Evict that line from the LLC by walking llc.ways same-LLC-set lines.
  const auto& llc = h.config().llc;
  const std::uint64_t stride =
      static_cast<std::uint64_t>(llc.num_sets) * llc.line_size;
  for (std::uint32_t w = 1; w <= llc.ways; ++w)
    h.load(0x7000 + w * stride, Owner::kAttacker);
  EXPECT_FALSE(h.probe_llc(0x7000));
  EXPECT_FALSE(h.probe_l1d(0x7000)) << "inclusive back-invalidation failed";
}

TEST(Hierarchy, FetchUsesInstructionCache) {
  CacheHierarchy h;
  const auto f1 = h.fetch(0x400000, Owner::kAttacker);
  EXPECT_FALSE(f1.l1_hit);
  const auto f2 = h.fetch(0x400000, Owner::kAttacker);
  EXPECT_TRUE(f2.l1_hit);
  // Data-side lookups do not hit the I-cache entry... but they share the
  // LLC (unified), so an LLC hit is expected.
  const auto d = h.load(0x400000, Owner::kAttacker);
  EXPECT_FALSE(d.l1_hit);
  EXPECT_TRUE(d.llc_hit);
}

TEST(Hierarchy, StoreCostsIncludeBufferLatency) {
  CacheHierarchy h;
  h.load(0x8000, Owner::kAttacker);
  const auto s = h.store(0x8000, Owner::kAttacker);
  EXPECT_TRUE(s.l1_hit);
  EXPECT_EQ(s.latency,
            h.config().lat_l1_hit + h.config().lat_store_buffer);
}

TEST(Hierarchy, ClearEmptiesEverything) {
  CacheHierarchy h;
  h.load(0x9000, Owner::kAttacker);
  h.fetch(0x400000, Owner::kAttacker);
  h.clear();
  EXPECT_FALSE(h.probe_l1d(0x9000));
  EXPECT_FALSE(h.probe_llc(0x9000));
  EXPECT_DOUBLE_EQ(h.llc().total_occupancy(), 0.0);
}

// ---- SHARP defense (DefensePolicy::kSharp) ----------------------------------

namespace {

/// One-set four-way SHARP cache: every line-aligned address lands in the
/// same set, so eviction order is fully scripted by the test.
CacheConfig one_set_sharp() {
  CacheConfig c{1, 4, 64};
  c.defense = DefensePolicy::kSharp;
  return c;
}

/// Tiny deterministic generator for the property sweeps (xorshift64).
struct TestRng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

}  // namespace

TEST(Sharp, PrefersEvictingAccessorOwnedVictim) {
  Cache c(one_set_sharp());
  c.access(0x000, AccessType::kLoad, Owner::kAttacker);  // oldest attacker line
  c.access(0x040, AccessType::kLoad, Owner::kVictim);
  c.access(0x080, AccessType::kLoad, Owner::kAttacker);
  c.access(0x0C0, AccessType::kLoad, Owner::kVictim);
  const AccessOutcome out = c.access(0x100, AccessType::kLoad, Owner::kAttacker);
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.evicted);
  // The LRU attacker-owned line goes; every victim-owned line survives.
  EXPECT_EQ(out.evicted_owner, Owner::kAttacker);
  EXPECT_EQ(out.evicted_line_addr, 0x000u);
  EXPECT_FALSE(c.probe(0x000));
  EXPECT_TRUE(c.probe(0x040));
  EXPECT_TRUE(c.probe(0x0C0));
  EXPECT_EQ(c.sharp_alarms_total(), 0u);
}

TEST(Sharp, ForeignOnlySetEvictsRandomlyAndRaisesAlarm) {
  Cache c(one_set_sharp());
  for (std::uint64_t a = 0; a < 4; ++a)
    c.access(a * 0x40, AccessType::kLoad, Owner::kVictim);
  const AccessOutcome out = c.access(0x100, AccessType::kLoad, Owner::kAttacker);
  EXPECT_TRUE(out.evicted);
  // The alarm is attributed to the REQUESTER forcing the cross-owner
  // eviction, not to the owner losing the line.
  EXPECT_EQ(out.evicted_owner, Owner::kVictim);
  EXPECT_EQ(c.sharp_alarms(Owner::kAttacker), 1u);
  EXPECT_EQ(c.sharp_alarms(Owner::kVictim), 0u);
  EXPECT_EQ(c.sharp_alarms_total(), 1u);

  // Re-fill the hole with a victim line so the set is foreign-only again;
  // the next attacker miss must bump the counter monotonically.
  EXPECT_TRUE(c.flush(0x100));
  c.access(0x100, AccessType::kLoad, Owner::kVictim);
  c.access(0x140, AccessType::kLoad, Owner::kAttacker);
  EXPECT_EQ(c.sharp_alarms(Owner::kAttacker), 2u);

  // But once the attacker holds a line in the set, SHARP evicts that one
  // and the alarm count stays put.
  c.access(0x180, AccessType::kLoad, Owner::kAttacker);
  EXPECT_EQ(c.sharp_alarms(Owner::kAttacker), 2u);
}

TEST(Sharp, ResetCountersZeroesAlarmsButKeepsContents) {
  Cache c(one_set_sharp());
  for (std::uint64_t a = 0; a < 4; ++a)
    c.access(a * 0x40, AccessType::kLoad, Owner::kVictim);
  c.access(0x100, AccessType::kLoad, Owner::kAttacker);
  ASSERT_EQ(c.sharp_alarms_total(), 1u);
  c.reset_counters();
  EXPECT_EQ(c.sharp_alarms(Owner::kAttacker), 0u);
  EXPECT_EQ(c.sharp_alarms_total(), 0u);
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  // Counter reset must not touch cache state.
  EXPECT_TRUE(c.probe(0x100));
  EXPECT_DOUBLE_EQ(c.total_occupancy(), 1.0);
}

TEST(Sharp, OwnerTagConservationUnderRandomTraffic) {
  const std::uint64_t seed = testutil::test_seed(20260808);
  SCOPED_TRACE(testutil::seed_note(seed));
  CacheConfig cfg{4, 4, 64};  // 16 lines: power of two, sums are exact
  cfg.defense = DefensePolicy::kSharp;
  Cache c(cfg);
  TestRng rng{seed | 1};
  static constexpr Owner kOwners[] = {Owner::kAttacker, Owner::kVictim,
                                      Owner::kOther};
  std::uint64_t prev_alarms = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = (rng.next() % 64) * 0x40;
    const Owner who = kOwners[rng.next() % 3];
    if (rng.next() % 8 == 0) {
      c.flush(addr);
    } else {
      c.access(addr, AccessType::kLoad, who);
    }
    // Owner tags partition the valid lines: per-owner occupancies sum to
    // the total, which never exceeds 1.0.
    const double sum = c.occupancy(Owner::kNone) + c.occupancy(Owner::kAttacker) +
                       c.occupancy(Owner::kVictim) + c.occupancy(Owner::kOther);
    ASSERT_DOUBLE_EQ(sum, c.total_occupancy());
    ASSERT_LE(c.total_occupancy(), 1.0);
    // Alarm counters are monotone outside reset_counters().
    const std::uint64_t alarms = c.sharp_alarms_total();
    ASSERT_GE(alarms, prev_alarms);
    prev_alarms = alarms;
  }
  EXPECT_EQ(c.sharp_alarms_total(), c.sharp_alarms(Owner::kAttacker) +
                                        c.sharp_alarms(Owner::kVictim) +
                                        c.sharp_alarms(Owner::kOther) +
                                        c.sharp_alarms(Owner::kNone));
}

TEST(Sharp, SingleOwnerTrafficDegeneratesToLru) {
  // With one owner every set always holds a self-owned line, so SHARP's
  // preference step picks exactly the LRU victim and the random fallback
  // never fires: the defended cache is bit-identical to the undefended one.
  const std::uint64_t seed = testutil::test_seed(20260809);
  SCOPED_TRACE(testutil::seed_note(seed));
  CacheConfig defended{4, 4, 64};
  defended.defense = DefensePolicy::kSharp;
  Cache sharp(defended);
  Cache plain(CacheConfig{4, 4, 64});
  TestRng rng{seed | 1};
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = (rng.next() % 64) * 0x40;
    const AccessOutcome a = sharp.access(addr, AccessType::kLoad, Owner::kAttacker);
    const AccessOutcome b = plain.access(addr, AccessType::kLoad, Owner::kAttacker);
    ASSERT_EQ(a.hit, b.hit) << "step " << i;
    ASSERT_EQ(a.evicted, b.evicted) << "step " << i;
    ASSERT_EQ(a.evicted_line_addr, b.evicted_line_addr) << "step " << i;
  }
  EXPECT_EQ(sharp.hits(), plain.hits());
  EXPECT_EQ(sharp.misses(), plain.misses());
  EXPECT_EQ(sharp.sharp_alarms_total(), 0u);
}

TEST(Sharp, MixedOwnerReplayIsBitIdentical) {
  // Two caches with the same config (including defense_seed) replaying the
  // same mixed-owner trace agree on every outcome and every counter — the
  // foundation of the scenario matrix's differential battery.
  const std::uint64_t seed = testutil::test_seed(20260810);
  SCOPED_TRACE(testutil::seed_note(seed));
  CacheConfig cfg{4, 4, 64};
  cfg.defense = DefensePolicy::kSharp;
  cfg.defense_seed = seed | 1;  // nonzero for xorshift
  Cache a(cfg);
  Cache b(cfg);
  TestRng rng{(seed ^ 0x5eedULL) | 1};
  static constexpr Owner kOwners[] = {Owner::kAttacker, Owner::kVictim,
                                      Owner::kOther};
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = (rng.next() % 64) * 0x40;
    const Owner who = kOwners[rng.next() % 3];
    const AccessOutcome oa = a.access(addr, AccessType::kLoad, who);
    const AccessOutcome ob = b.access(addr, AccessType::kLoad, who);
    ASSERT_EQ(oa.hit, ob.hit) << "step " << i;
    ASSERT_EQ(oa.evicted_line_addr, ob.evicted_line_addr) << "step " << i;
    ASSERT_EQ(oa.evicted_owner, ob.evicted_owner) << "step " << i;
  }
  EXPECT_EQ(a.hits(), b.hits());
  EXPECT_EQ(a.misses(), b.misses());
  EXPECT_EQ(a.sharp_alarms_total(), b.sharp_alarms_total());
  EXPECT_EQ(a.sharp_alarms(Owner::kAttacker), b.sharp_alarms(Owner::kAttacker));
}

TEST(Hierarchy, DefenseConfigAppliesToLlcOnly) {
  HierarchyConfig hc;
  hc.defense = DefensePolicy::kSharp;
  CacheHierarchy h(hc);
  EXPECT_EQ(h.llc().config().defense, DefensePolicy::kSharp);
  EXPECT_EQ(h.l1d().config().defense, DefensePolicy::kNone);
}

TEST(Hierarchy, SharpAlarmSurfacesThroughAccessor) {
  HierarchyConfig hc;
  hc.defense = DefensePolicy::kSharp;
  CacheHierarchy h(hc);
  // Fill one LLC set with victim-owned lines, then force an attacker miss
  // into it: every candidate victim line is foreign, so the LLC raises an
  // alarm against the attacker.
  const auto& llc = h.config().llc;
  const std::uint64_t stride =
      static_cast<std::uint64_t>(llc.num_sets) * llc.line_size;
  for (std::uint32_t w = 0; w < llc.ways; ++w)
    h.load(0x10000 + w * stride, Owner::kVictim);
  EXPECT_EQ(h.sharp_alarms(Owner::kAttacker), 0u);
  h.load(0x10000 + llc.ways * stride, Owner::kAttacker);
  EXPECT_EQ(h.sharp_alarms(Owner::kAttacker), 1u);
  EXPECT_EQ(h.sharp_alarms(Owner::kVictim), 0u);
}

TEST(Hierarchy, UndefendedHierarchyNeverAlarms) {
  CacheHierarchy h;
  const auto& llc = h.config().llc;
  const std::uint64_t stride =
      static_cast<std::uint64_t>(llc.num_sets) * llc.line_size;
  for (std::uint32_t w = 0; w <= llc.ways; ++w)
    h.load(0x10000 + w * stride,
           w % 2 == 0 ? Owner::kVictim : Owner::kAttacker);
  EXPECT_EQ(h.sharp_alarms(Owner::kAttacker), 0u);
  EXPECT_EQ(h.sharp_alarms(Owner::kVictim), 0u);
}

}  // namespace
}  // namespace scag::cache
