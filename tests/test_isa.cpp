// Unit tests for the ISA layer: opcodes, instructions, normalization,
// programs, the builder DSL, and the text assembler.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/builder.h"
#include "isa/normalize.h"
#include "isa/program.h"

namespace scag::isa {
namespace {

// ---- Opcodes ---------------------------------------------------------------

TEST(Opcode, NameParseRoundTrip) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(Opcode::kCount);
       ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const auto parsed = parse_opcode(opcode_name(op));
    ASSERT_TRUE(parsed.has_value()) << opcode_name(op);
    EXPECT_EQ(*parsed, op);
  }
}

TEST(Opcode, ParseUnknownFails) {
  EXPECT_FALSE(parse_opcode("frobnicate").has_value());
  EXPECT_FALSE(parse_opcode("").has_value());
}

TEST(Opcode, ControlFlowClassification) {
  EXPECT_TRUE(is_control_flow(Opcode::kJmp));
  EXPECT_TRUE(is_control_flow(Opcode::kJne));
  EXPECT_TRUE(is_control_flow(Opcode::kCall));
  EXPECT_TRUE(is_control_flow(Opcode::kRet));
  EXPECT_FALSE(is_control_flow(Opcode::kMov));
  EXPECT_FALSE(is_control_flow(Opcode::kClflush));

  EXPECT_TRUE(is_cond_branch(Opcode::kJa));
  EXPECT_FALSE(is_cond_branch(Opcode::kJmp));
  EXPECT_FALSE(is_cond_branch(Opcode::kRet));

  EXPECT_TRUE(ends_basic_block(Opcode::kHlt));
  EXPECT_TRUE(ends_basic_block(Opcode::kRet));
  EXPECT_FALSE(ends_basic_block(Opcode::kMfence));
}

TEST(Reg, NameParseRoundTrip) {
  for (std::size_t i = 0; i < kNumRegs; ++i) {
    const Reg r = static_cast<Reg>(i);
    const auto parsed = parse_reg(reg_name(r));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, r);
  }
  EXPECT_FALSE(parse_reg("r16").has_value());
  EXPECT_FALSE(parse_reg("eax").has_value());
}

// ---- Instruction helpers -----------------------------------------------------

TEST(Instruction, MemoryClassification) {
  Instruction load{Opcode::kMov, reg(Reg::RAX), mem(Reg::RBX), 0, 0};
  EXPECT_TRUE(reads_memory(load));
  EXPECT_FALSE(writes_memory(load));
  EXPECT_TRUE(accesses_cache(load));

  Instruction store{Opcode::kMov, mem(Reg::RBX), reg(Reg::RAX), 0, 0};
  EXPECT_FALSE(reads_memory(store));
  EXPECT_TRUE(writes_memory(store));

  Instruction rmw{Opcode::kAdd, mem(Reg::RBX), imm(1), 0, 0};
  EXPECT_TRUE(reads_memory(rmw));
  EXPECT_TRUE(writes_memory(rmw));

  Instruction lea_i{Opcode::kLea, reg(Reg::RAX), mem(Reg::RBX, 8), 0, 0};
  EXPECT_FALSE(reads_memory(lea_i));
  EXPECT_FALSE(writes_memory(lea_i));
  EXPECT_FALSE(accesses_cache(lea_i));

  Instruction flush{Opcode::kClflush, mem(Reg::RAX), {}, 0, 0};
  EXPECT_FALSE(reads_memory(flush));
  EXPECT_FALSE(writes_memory(flush));
  EXPECT_TRUE(accesses_cache(flush));

  Instruction push_i{Opcode::kPush, reg(Reg::RAX), {}, 0, 0};
  EXPECT_TRUE(writes_memory(push_i));
  Instruction pop_i{Opcode::kPop, reg(Reg::RAX), {}, 0, 0};
  EXPECT_TRUE(reads_memory(pop_i));

  Instruction cmp_mem{Opcode::kCmp, reg(Reg::RAX), mem(Reg::RBX), 0, 0};
  EXPECT_TRUE(reads_memory(cmp_mem));
  EXPECT_FALSE(writes_memory(cmp_mem));
}

TEST(Instruction, ToStringFormats) {
  Instruction i1{Opcode::kMov, reg(Reg::RAX),
                 mem_idx(Reg::RBX, Reg::RCX, 8, 16), 0, 0};
  EXPECT_EQ(to_string(i1), "mov rax, [rbx+rcx*8+16]");

  Instruction i2{Opcode::kMov, reg(Reg::RAX), mem(Reg::RBX, -8), 0, 0};
  EXPECT_EQ(to_string(i2), "mov rax, [rbx-8]");

  Instruction i3{Opcode::kNop, {}, {}, 0, 0};
  EXPECT_EQ(to_string(i3), "nop");

  Instruction i4{Opcode::kJne, {}, {}, 0x400010, 0x400000};
  EXPECT_EQ(to_string(i4), "jne 0x400000");

  Instruction i5{Opcode::kMov, reg(Reg::R8), imm(-5), 0, 0};
  EXPECT_EQ(to_string(i5), "mov r8, -5");
}

// ---- Normalization (paper Section III-B1) -----------------------------------

TEST(Normalize, PaperRules) {
  // mov -0x18(rbp), rax  ->  "mov mem, reg"
  Instruction i{Opcode::kMov, mem(Reg::RBP, -0x18), reg(Reg::RAX), 0, 0};
  EXPECT_EQ(normalize(i), "mov mem, reg");
  // Immediates -> imm.
  Instruction j{Opcode::kAdd, reg(Reg::RCX), imm(4096), 0, 0};
  EXPECT_EQ(normalize(j), "add reg, imm");
  // Branch targets are addresses -> mem.
  Instruction k{Opcode::kJle, {}, {}, 0, 0x400000};
  EXPECT_EQ(normalize(k), "jle mem");
  Instruction r{Opcode::kRet, {}, {}, 0, 0};
  EXPECT_EQ(normalize(r), "ret");
  Instruction f{Opcode::kClflush, mem(Reg::RDI), {}, 0, 0};
  EXPECT_EQ(normalize(f), "clflush mem");
}

TEST(Normalize, RegistersAreIndistinguishable) {
  Instruction a{Opcode::kMov, reg(Reg::RAX), reg(Reg::RBX), 0, 0};
  Instruction b{Opcode::kMov, reg(Reg::R13), reg(Reg::R14), 0, 0};
  EXPECT_EQ(normalize(a), normalize(b));
}

TEST(Normalize, SequencePreservesLength) {
  std::vector<Instruction> seq = {
      {Opcode::kMov, reg(Reg::RAX), imm(1), 0, 0},
      {Opcode::kNop, {}, {}, 0, 0},
  };
  EXPECT_EQ(normalize(seq).size(), 2u);
}

TEST(SemanticTokens, AttackVocabulary) {
  std::vector<Instruction> seq = {
      {Opcode::kClflush, mem(Reg::RAX), {}, 0, 0},
      {Opcode::kRdtscp, reg(Reg::R8), {}, 0, 0},
      {Opcode::kMov, reg(Reg::RBX), mem(Reg::RSI), 0, 0},
      {Opcode::kMov, mem(Reg::RSI), reg(Reg::RBX), 0, 0},
      {Opcode::kAdd, reg(Reg::RAX), imm(1), 0, 0},  // no token
      {Opcode::kMfence, {}, {}, 0, 0},
      {Opcode::kJl, {}, {}, 0, 0x400000},
      {Opcode::kAdd, mem(Reg::RDI), imm(1), 0, 0},  // rmw
  };
  const auto tokens = semantic_tokens(seq);
  const std::vector<std::string> expected = {"flush", "time",  "load", "store",
                                             "fence", "br",    "rmw"};
  EXPECT_EQ(tokens, expected);
}

TEST(SemanticTokens, WeightsAndCosts) {
  EXPECT_DOUBLE_EQ(semantic_token_weight("flush"), 1.0);
  EXPECT_DOUBLE_EQ(semantic_token_weight("time"), 1.0);
  EXPECT_LT(semantic_token_weight("br"), semantic_token_weight("load"));
  EXPECT_DOUBLE_EQ(semantic_subst_cost("load", "load"), 0.0);
  EXPECT_LT(semantic_subst_cost("load", "store"),
            semantic_subst_cost("load", "flush"));
  // Symmetry.
  EXPECT_DOUBLE_EQ(semantic_subst_cost("flush", "br"),
                   semantic_subst_cost("br", "flush"));
}

// ---- Program ----------------------------------------------------------------

TEST(Program, AddressingAndIndexOf) {
  Program p("t", 0x1000);
  p.append({Opcode::kNop, {}, {}, 0, 0});
  p.append({Opcode::kHlt, {}, {}, 0, 0});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.address_of(0), 0x1000u);
  EXPECT_EQ(p.address_of(1), 0x1000u + kInstrSize);
  EXPECT_EQ(p.index_of(0x1000), 0u);
  EXPECT_EQ(p.index_of(0x1004), 1u);
  EXPECT_EQ(p.index_of(0x1002), Program::npos);  // misaligned
  EXPECT_EQ(p.index_of(0x0fff), Program::npos);  // below base
  EXPECT_EQ(p.index_of(0x1008), Program::npos);  // past end
}

TEST(Program, ValidateCatchesBadTarget) {
  Program p("t");
  Instruction j{Opcode::kJmp, {}, {}, 0, 0xdeadbeef};
  p.append(j);
  EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Program, ValidateCatchesEmptyAndMemMem) {
  Program empty("e");
  EXPECT_THROW(empty.validate(), std::runtime_error);

  Program p("m");
  p.append({Opcode::kMov, mem(Reg::RAX), mem(Reg::RBX), 0, 0});
  EXPECT_THROW(p.validate(), std::runtime_error);
}

// ---- ProgramBuilder ----------------------------------------------------------

TEST(Builder, ForwardAndBackwardLabels) {
  ProgramBuilder b("t");
  b.jmp("end");               // forward reference
  b.label("loop");
  b.nop();
  b.jne("loop");              // backward reference
  b.label("end");
  b.hlt();
  const Program p = b.build();
  EXPECT_EQ(p.at(0).target, p.label("end"));
  EXPECT_EQ(p.at(2).target, p.label("loop"));
}

TEST(Builder, UndefinedLabelThrows) {
  ProgramBuilder b("t");
  b.jmp("nowhere");
  b.hlt();
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, DuplicateLabelThrows) {
  ProgramBuilder b("t");
  b.label("x");
  b.nop();
  EXPECT_THROW(b.label("x"), std::invalid_argument);
}

TEST(Builder, EntryDefaultsAndOverrides) {
  ProgramBuilder b("t");
  b.nop();
  b.label("start");
  b.hlt();
  b.entry("start");
  const Program p = b.build();
  EXPECT_EQ(p.entry(), p.label("start"));
}

TEST(Builder, RelevantMarks) {
  ProgramBuilder b("t");
  b.nop();
  b.mark_relevant(true);
  b.clflush(mem(Reg::RAX));
  b.mark_relevant(false);
  b.hlt();
  const Program p = b.build();
  EXPECT_EQ(p.relevant_marks().size(), 1u);
  EXPECT_TRUE(p.relevant_marks().count(p.address_of(1)));
}

TEST(Builder, DataWordsAndRegions) {
  ProgramBuilder b("t");
  b.data_word(0x1000, 7);
  b.data_region(0x2000, 32, 9);  // 4 words
  b.hlt();
  const Program p = b.build();
  EXPECT_EQ(p.initial_data().at(0x1000), 7u);
  EXPECT_EQ(p.initial_data().at(0x2000), 9u);
  EXPECT_EQ(p.initial_data().at(0x2018), 9u);
  EXPECT_EQ(p.initial_data().count(0x2020), 0u);
}

TEST(Builder, BuildTwiceThrows) {
  ProgramBuilder b("t");
  b.hlt();
  b.build();
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Builder, EmitRejectsBranches) {
  ProgramBuilder b("t");
  EXPECT_THROW(b.emit(Opcode::kJmp), std::invalid_argument);
  EXPECT_THROW(b.branch(Opcode::kMov, "x"), std::invalid_argument);
}

// ---- Assembler ---------------------------------------------------------------

TEST(Assembler, ParsesRepresentativeProgram) {
  const Program p = assemble(R"(
      ; a tiny flush+time snippet
      .word 0x10000 42
      start:
        mov rax, [rbx+rcx*8+16]
        clflush [rax]
        rdtscp r8
        cmp r8, 100       # threshold
        jb start
        hlt
      .entry start
  )");
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.at(0).op, Opcode::kMov);
  EXPECT_EQ(p.at(0).src.mem.scale, 8);
  EXPECT_EQ(p.at(0).src.mem.disp, 16);
  EXPECT_EQ(p.at(1).op, Opcode::kClflush);
  EXPECT_EQ(p.at(4).op, Opcode::kJb);
  EXPECT_EQ(p.at(4).target, p.label("start"));
  EXPECT_EQ(p.initial_data().at(0x10000), 42u);
}

TEST(Assembler, ParsesOperandShapes) {
  const Program p = assemble(R"(
      mov rax, 0x10
      mov rbx, -5
      mov rcx, [0x2000]
      mov rdx, [rsi]
      mov r8, [rsi+32]
      mov r9, [rsi+rdi]
      mov r10, [rsi+rdi*4]
      mov r11, [rsi+rdi*2+-8]
      hlt
  )");
  EXPECT_EQ(p.at(0).src.imm, 0x10);
  EXPECT_EQ(p.at(1).src.imm, -5);
  EXPECT_EQ(p.at(2).src.mem.disp, 0x2000);
  EXPECT_EQ(p.at(2).src.mem.base, MemRef::kNoReg);
  EXPECT_EQ(p.at(6).src.mem.scale, 4);
  EXPECT_EQ(p.at(7).src.mem.disp, -8);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus rax\nhlt\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, RejectsBadSyntax) {
  EXPECT_THROW(assemble("mov rax rbx\nhlt"), AsmError);   // missing comma
  EXPECT_THROW(assemble("jmp\nhlt"), AsmError);           // missing target
  EXPECT_THROW(assemble("jmp a b\nhlt"), AsmError);       // too many targets
  EXPECT_THROW(assemble("mov [rax], [rbx]\nhlt"), AsmError);  // mem-mem
  EXPECT_THROW(assemble(".entry\nhlt"), AsmError);
  EXPECT_THROW(assemble(".word 12\nhlt"), AsmError);
  EXPECT_THROW(assemble("mov rax, [rbx+rcx*3]\nhlt"), AsmError);  // bad scale
}

TEST(Assembler, DisassembleReparses) {
  ProgramBuilder b("t");
  b.label("top");
  b.mov(reg(Reg::RAX), mem_idx(Reg::RBX, Reg::RCX, 8, 64));
  b.add(reg(Reg::RAX), imm(3));
  b.jne("top");
  b.hlt();
  const Program p = b.build();
  // The disassembly is for humans (hex addresses on branches), but the
  // instruction text lines for non-branches re-assemble cleanly.
  const std::string text = p.disassemble();
  EXPECT_NE(text.find("mov rax, [rbx+rcx*8+64]"), std::string::npos);
  EXPECT_NE(text.find("top:"), std::string::npos);
}

}  // namespace
}  // namespace scag::isa
