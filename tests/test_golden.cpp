// Golden end-to-end regression test: scans the fixed corpus of
// tests/golden_corpus.h against the committed repository fixture and
// compares every verdict and best score BIT-EXACTLY against
// tests/data/golden_expected.txt.
//
// If this test fails, the end-to-end behavior of the pipeline changed.
// That is either a bug (fix it) or an intentional improvement — in which
// case regenerate the fixture, review the diff, and commit it with your
// change:
//
//   build/tools/make_golden tests/data
//
// Never regenerate to silence a failure you cannot explain.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/family.h"
#include "core/serialize.h"
#include "golden_corpus.h"
#include "support/events.h"
#include "support/failpoint.h"

#ifndef SCAG_TEST_DATA_DIR
#error "SCAG_TEST_DATA_DIR must point at tests/data (set by tests/CMakeLists.txt)"
#endif

namespace scag::core {
namespace {

constexpr const char* kRegenerate =
    "\n  The golden fixture no longer matches the pipeline's behavior."
    "\n  If this change is intentional, regenerate and review the diff:"
    "\n    build/tools/make_golden tests/data"
    "\n  (see docs/testing-guide.md \"Golden regression fixture\")";

struct ExpectedLine {
  std::string verdict;
  std::string score_bits;
};

std::map<std::string, ExpectedLine> read_expected(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path << kRegenerate;
  std::map<std::string, ExpectedLine> expected;
  std::string line;
  bool header_ok = false, end_ok = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == golden::kExpectedHeader) {
      header_ok = true;
      continue;
    }
    if (line == "end") {
      end_ok = true;
      continue;
    }
    std::istringstream fields(line);
    std::string tag, name;
    ExpectedLine e;
    fields >> tag >> name >> e.verdict >> e.score_bits;
    EXPECT_EQ(tag, "target") << "malformed fixture line: " << line;
    expected[name] = e;
  }
  EXPECT_TRUE(header_ok) << "fixture header missing" << kRegenerate;
  EXPECT_TRUE(end_ok) << "fixture truncated (no 'end')" << kRegenerate;
  return expected;
}

TEST(Golden, EndToEndVerdictsAndScoresMatchFixture) {
  const std::string data_dir = SCAG_TEST_DATA_DIR;
  const std::map<std::string, ExpectedLine> expected =
      read_expected(data_dir + "/golden_expected.txt");
  ASSERT_FALSE(expected.empty());

  // The repository comes from the committed file, not from re-enrollment,
  // so serializer drift is caught alongside modeling/scoring drift.
  Detector detector(ModelConfig{}, calibrated_dtw_config(), 0.45);
  for (AttackModel& m : load_models_from_file(data_dir + "/golden.repo"))
    detector.enroll(std::move(m));
  ASSERT_EQ(detector.repository_size(), 4u) << kRegenerate;

  const std::vector<golden::GoldenTarget> targets = golden::make_targets();
  ASSERT_EQ(targets.size(), expected.size())
      << "target corpus and fixture disagree on size" << kRegenerate;

  for (const golden::GoldenTarget& t : targets) {
    SCOPED_TRACE("target " + t.name);
    const auto it = expected.find(t.name);
    ASSERT_NE(it, expected.end())
        << "target missing from fixture" << kRegenerate;
    const Detection d = detector.scan(t.program);
    EXPECT_EQ(std::string(family_abbrev(d.verdict)), it->second.verdict)
        << kRegenerate;
    EXPECT_EQ(golden::score_bits(d.best_score), it->second.score_bits)
        << "score drifted: got " << d.best_score << " ("
        << golden::score_bits(d.best_score) << "), fixture has "
        << golden::bits_score(it->second.score_bits) << kRegenerate;
  }
}

// The explain fixture pins the full alignment evidence — every model's
// score/distance bit patterns, the best model's warping path with its
// D_IS/D_CSP decomposition, and the verdict rationale — for the same
// corpus. A drift here with Golden.EndToEnd green means the *evidence*
// changed while the verdicts happened to survive: exactly the kind of
// silent behavioral shift explainability exists to catch.
TEST(Golden, ExplainEvidenceMatchesFixture) {
  const std::string data_dir = SCAG_TEST_DATA_DIR;
  std::ifstream in(data_dir + "/golden_explain.txt");
  ASSERT_TRUE(in.is_open())
      << "missing fixture golden_explain.txt" << kRegenerate;
  std::string line, have;
  bool header_ok = false, end_ok = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == golden::kExplainHeader) {
      header_ok = true;
      continue;
    }
    if (line == "end") {
      end_ok = true;
      continue;
    }
    have += line + "\n";
  }
  EXPECT_TRUE(header_ok) << "fixture header missing" << kRegenerate;
  EXPECT_TRUE(end_ok) << "fixture truncated (no 'end')" << kRegenerate;

  Detector detector(ModelConfig{}, calibrated_dtw_config(), 0.45);
  for (AttackModel& m : load_models_from_file(data_dir + "/golden.repo"))
    detector.enroll(std::move(m));
  ASSERT_EQ(detector.repository_size(), 4u) << kRegenerate;

  std::string want;
  for (const golden::GoldenTarget& t : golden::make_targets())
    want += golden::explain_fixture_block(detector, t);
  EXPECT_EQ(have, want) << kRegenerate;
}

// The observability plane's end-to-end contract on the golden corpus:
// with a ring-only journal recording and `detector.scan=throw#1` armed,
// one failing scan plus one clean rescan of the same golden target must
// produce EXACTLY the sequence [scan-start, failpoint-hit(detector.scan),
// scan-start, scan-verdict] — correlated by scan id — and the verdict
// event must carry the fixture's score bits verbatim. Pins both that the
// failpoint layer emits its marker *before* unwinding and that the
// journal's evidence agrees bit-for-bit with the committed fixture.
TEST(Golden, FailpointEventSequenceMatchesFixture) {
  if (!support::fp::compiled_in() ||
      !support::events::EventJournal::compiled_in())
    GTEST_SKIP() << "failpoints or the event journal compiled out";

  const std::string data_dir = SCAG_TEST_DATA_DIR;
  const std::map<std::string, ExpectedLine> expected =
      read_expected(data_dir + "/golden_expected.txt");
  Detector detector(ModelConfig{}, calibrated_dtw_config(), 0.45);
  for (AttackModel& m : load_models_from_file(data_dir + "/golden.repo"))
    detector.enroll(std::move(m));
  ASSERT_EQ(detector.repository_size(), 4u) << kRegenerate;

  const std::vector<golden::GoldenTarget> targets = golden::make_targets();
  ASSERT_FALSE(targets.empty());
  const golden::GoldenTarget& t = targets.front();
  const auto it = expected.find(t.name);
  ASSERT_NE(it, expected.end()) << kRegenerate;

  // Unwind order: disarm first, then stop the journal, even when an
  // assertion bails out mid-test.
  struct Cleanup {
    ~Cleanup() {
      support::fp::disarm_all();
      support::events::EventJournal::global().stop();
    }
  } cleanup;

  support::events::JournalConfig config;
  config.ring_capacity = 1u << 12;
  support::events::EventJournal::global().start(config);
  ASSERT_EQ(support::fp::arm_from_string("detector.scan=throw#1"), 1u);

  EXPECT_THROW(detector.scan(t.program), support::fp::FailpointError);
  const Detection d = detector.scan(t.program);  // #1 budget spent: passes

  std::vector<support::events::Event> seq;
  support::events::EventJournal::global().drain(seq);

  using support::events::EventType;
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0].type, EventType::kScanStart);
  EXPECT_EQ(seq[1].type, EventType::kFailpointHit);
  EXPECT_EQ(seq[1].detail_view(), "detector.scan");
  EXPECT_EQ(seq[2].type, EventType::kScanStart);
  EXPECT_EQ(seq[3].type, EventType::kScanVerdict);
  // Scan-id correlation: the failpoint marker belongs to the first scan,
  // the verdict to the second, and the two scans are distinct.
  EXPECT_EQ(seq[0].scan, seq[1].scan);
  EXPECT_EQ(seq[2].scan, seq[3].scan);
  EXPECT_NE(seq[0].scan, seq[2].scan);

  // The verdict event's payload is the fixture's, bit for bit.
  EXPECT_EQ(golden::score_bits(d.best_score), it->second.score_bits)
      << kRegenerate;
  EXPECT_EQ(seq[3].a, std::bit_cast<std::uint64_t>(d.best_score));
  EXPECT_EQ(std::string(family_abbrev(static_cast<Family>(seq[3].family))),
            it->second.verdict)
      << kRegenerate;
  ASSERT_FALSE(d.scores.empty());
  EXPECT_EQ(seq[3].detail_view(), d.scores.front().model_name);
}

// The committed repository itself must round-trip: guards against fixture
// corruption (hand edits, bad merges) separately from behavior drift.
TEST(Golden, FixtureRepositoryRoundTrips) {
  const std::string path = std::string(SCAG_TEST_DATA_DIR) + "/golden.repo";
  const std::vector<AttackModel> models = load_models_from_file(path);
  ASSERT_EQ(models.size(), 4u) << kRegenerate;
  const std::string text = save_models_to_string(models);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream disk;
  disk << in.rdbuf();
  EXPECT_EQ(text, disk.str())
      << "golden.repo is not in canonical serializer form" << kRegenerate;
}

}  // namespace
}  // namespace scag::core
