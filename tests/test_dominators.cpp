// Tests for dominator analysis and natural-loop discovery.
#include <gtest/gtest.h>

#include <memory>

#include "cfg/dominators.h"
#include "isa/assembler.h"

namespace scag::cfg {
namespace {

using isa::assemble;
using isa::Program;

// Cfg keeps a pointer to its Program, so both live behind stable storage.
struct Built {
  std::unique_ptr<Program> program;
  std::unique_ptr<Cfg> cfg;
  static Built from(const char* src) {
    Built b;
    b.program = std::make_unique<Program>(assemble(src));
    b.cfg = std::make_unique<Cfg>(Cfg::build(*b.program));
    return b;
  }
};

TEST(Dominators, StraightLineChain) {
  // One block only: entry dominates itself.
  const auto built = Built::from("nop\nnop\nhlt\n");
  const DominatorTree dom(*built.cfg);
  const BlockId entry = built.cfg->entry_block();
  EXPECT_EQ(dom.idom(entry), entry);
  EXPECT_TRUE(dom.dominates(entry, entry));
}

TEST(Dominators, DiamondJoinsAtEntry) {
  const auto built = Built::from(R"(
      entry:
        cmp rax, 0
        je right
      left:
        nop
        jmp join
      right:
        nop
      join:
        hlt
  )");
  const DominatorTree dom(*built.cfg);
  const Program& p = *built.program;
  const BlockId entry = built.cfg->block_at_address(p.label("entry"));
  const BlockId left = built.cfg->block_at_address(p.label("left"));
  const BlockId right = built.cfg->block_at_address(p.label("right"));
  const BlockId join = built.cfg->block_at_address(p.label("join"));

  EXPECT_EQ(dom.idom(left), entry);
  EXPECT_EQ(dom.idom(right), entry);
  // Neither branch dominates the join; its idom is the entry.
  EXPECT_EQ(dom.idom(join), entry);
  EXPECT_TRUE(dom.dominates(entry, join));
  EXPECT_FALSE(dom.dominates(left, join));
  EXPECT_FALSE(dom.dominates(right, join));
  EXPECT_FALSE(dom.dominates(left, right));
}

TEST(Dominators, NestedStructure) {
  const auto built = Built::from(R"(
      a:
        cmp rax, 0
        je d
      b:
        nop
      c:
        cmp rbx, 0
        je c2
      c1:
        nop
      c2:
        nop
      d:
        hlt
  )");
  const DominatorTree dom(*built.cfg);
  const Program& p = *built.program;
  const BlockId a = built.cfg->block_at_address(p.label("a"));
  const BlockId b = built.cfg->block_at_address(p.label("b"));
  const BlockId c1 = built.cfg->block_at_address(p.label("c1"));
  const BlockId c2 = built.cfg->block_at_address(p.label("c2"));
  const BlockId d = built.cfg->block_at_address(p.label("d"));
  EXPECT_TRUE(dom.dominates(a, c1));
  EXPECT_TRUE(dom.dominates(b, c1));
  EXPECT_TRUE(dom.dominates(b, c2));
  EXPECT_FALSE(dom.dominates(c1, c2));
  EXPECT_FALSE(dom.dominates(b, d));  // d reachable from a directly
}

TEST(Dominators, UnreachableBlocksReported) {
  const auto built = Built::from(R"(
      .entry main
      dead:
        nop
        hlt
      main:
        hlt
  )");
  const DominatorTree dom(*built.cfg);
  const BlockId dead =
      built.cfg->block_at_address(built.program->label("dead"));
  EXPECT_FALSE(dom.reachable(dead));
  EXPECT_TRUE(dom.reachable(built.cfg->entry_block()));
  EXPECT_FALSE(dom.dominates(built.cfg->entry_block(), dead));
}

TEST(Loops, SimpleCountedLoop) {
  const auto built = Built::from(R"(
      mov rcx, 4
      loop:
      dec rcx
      jne loop
      hlt
  )");
  const DominatorTree dom(*built.cfg);
  const auto loops = find_natural_loops(*built.cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  const BlockId header =
      built.cfg->block_at_address(built.program->label("loop"));
  EXPECT_EQ(loops[0].header, header);
  EXPECT_EQ(loops[0].latch, header);  // self-loop block
  EXPECT_TRUE(loops[0].contains(header));
}

TEST(Loops, NestedLoopsDiscovered) {
  const auto built = Built::from(R"(
      mov rcx, 3
      outer:
      mov rdx, 3
      inner:
      dec rdx
      jne inner
      dec rcx
      jne outer
      hlt
  )");
  const DominatorTree dom(*built.cfg);
  const auto loops = find_natural_loops(*built.cfg, dom);
  ASSERT_EQ(loops.size(), 2u);
  const BlockId outer =
      built.cfg->block_at_address(built.program->label("outer"));
  const BlockId inner =
      built.cfg->block_at_address(built.program->label("inner"));
  // Identify which is which by header.
  const NaturalLoop& inner_loop =
      loops[0].header == inner ? loops[0] : loops[1];
  const NaturalLoop& outer_loop =
      loops[0].header == outer ? loops[0] : loops[1];
  EXPECT_EQ(inner_loop.header, inner);
  EXPECT_EQ(outer_loop.header, outer);
  // The inner loop body is strictly contained in the outer loop body.
  for (BlockId b : inner_loop.body) EXPECT_TRUE(outer_loop.contains(b));
  EXPECT_GT(outer_loop.body.size(), inner_loop.body.size());
}

TEST(Loops, AcyclicCfgHasNone) {
  const auto built = Built::from(R"(
      cmp rax, 0
      je x
      nop
      x:
      hlt
  )");
  const DominatorTree dom(*built.cfg);
  EXPECT_TRUE(find_natural_loops(*built.cfg, dom).empty());
}

TEST(Loops, AttackPocLoopsFound) {
  // Smoke: the FR PoC has its flush/reload/round loops discovered.
  const auto poc = isa::assemble(R"(
      mov rcx, 3
      round:
      mov rdi, 0
      flush:
      clflush [rdi]
      inc rdi
      cmp rdi, 16
      jl flush
      dec rcx
      jne round
      hlt
  )");
  const Cfg cfg = Cfg::build(poc);
  const DominatorTree dom(cfg);
  const auto loops = find_natural_loops(cfg, dom);
  EXPECT_EQ(loops.size(), 2u);
}

}  // namespace
}  // namespace scag::cfg
