// Tests for CFG recovery and the graph algorithms behind Algorithm 1.
#include <gtest/gtest.h>

#include "cfg/cfg.h"
#include "cfg/graph_algos.h"
#include "isa/assembler.h"
#include "support/rng.h"

namespace scag::cfg {
namespace {

using isa::assemble;
using isa::Program;

// ---- CFG construction ----------------------------------------------------------

TEST(CfgBuild, StraightLineIsOneBlock) {
  const Program p = assemble("nop\nnop\nmov rax, 1\nhlt\n");
  const Cfg cfg = Cfg::build(p);
  EXPECT_EQ(cfg.num_blocks(), 1u);
  EXPECT_EQ(cfg.block(0).count, 4u);
  EXPECT_TRUE(cfg.successors(0).empty());
}

TEST(CfgBuild, CondBranchSplitsThreeWays) {
  const Program p = assemble(R"(
      cmp rax, 1
      je yes
      mov rbx, 2
      hlt
      yes:
      mov rbx, 1
      hlt
  )");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.num_blocks(), 3u);
  const BlockId entry = cfg.entry_block();
  EXPECT_EQ(cfg.successors(entry).size(), 2u);
  // Both successors terminate.
  for (BlockId s : cfg.successors(entry))
    EXPECT_TRUE(cfg.successors(s).empty());
}

TEST(CfgBuild, LoopHasBackEdge) {
  const Program p = assemble(R"(
      mov rcx, 4
      loop:
      dec rcx
      jne loop
      hlt
  )");
  const Cfg cfg = Cfg::build(p);
  const BlockId loop = cfg.block_at_address(p.label("loop"));
  ASSERT_NE(loop, kNoBlock);
  bool self_edge = false;
  for (BlockId s : cfg.successors(loop)) self_edge |= s == loop;
  EXPECT_TRUE(self_edge);
}

TEST(CfgBuild, CallHasTargetAndFallthroughEdges) {
  const Program p = assemble(R"(
      .entry main
      fn:
        ret
      main:
        call fn
        hlt
  )");
  const Cfg cfg = Cfg::build(p);
  const BlockId main_block = cfg.block_at_address(p.label("main"));
  const BlockId fn_block = cfg.block_at_address(p.label("fn"));
  ASSERT_NE(main_block, kNoBlock);
  const auto& succs = cfg.successors(main_block);
  EXPECT_EQ(succs.size(), 2u);  // callee + return point
  EXPECT_NE(std::find(succs.begin(), succs.end(), fn_block), succs.end());
  EXPECT_TRUE(cfg.successors(fn_block).empty());  // ret
}

TEST(CfgBuild, PredecessorsMirrorSuccessors) {
  const Program p = assemble(R"(
      cmp rax, 0
      je a
      jmp b
      a:
      nop
      b:
      hlt
  )");
  const Cfg cfg = Cfg::build(p);
  for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
    for (BlockId s : cfg.successors(b)) {
      const auto& preds = cfg.predecessors(s);
      EXPECT_NE(std::find(preds.begin(), preds.end(), b), preds.end());
    }
  }
}

TEST(CfgBuild, BlockOfInstrCoversEveryInstruction) {
  const Program p = assemble(R"(
      mov rcx, 2
      x:
      dec rcx
      jne x
      hlt
  )");
  const Cfg cfg = Cfg::build(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const BlockId b = cfg.block_of_instr(i);
    ASSERT_NE(b, kNoBlock);
    EXPECT_GE(i, cfg.block(b).first);
    EXPECT_LE(i, cfg.block(b).last());
  }
}

TEST(CfgBuild, DotOutputMentionsAllBlocks) {
  const Program p = assemble("cmp rax, 0\nje x\nnop\nx:\nhlt\n");
  const Cfg cfg = Cfg::build(p);
  const std::string dot = cfg.to_dot();
  for (BlockId b = 0; b < cfg.num_blocks(); ++b)
    EXPECT_NE(dot.find("b" + std::to_string(b)), std::string::npos);
}

// ---- Back-edge removal -----------------------------------------------------------

TEST(BackEdges, SelfLoopRemoved) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  const auto removed = remove_back_edges(g, 0);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], (std::pair<std::uint32_t, std::uint32_t>{1, 1}));
  EXPECT_FALSE(has_cycle(g));
}

TEST(BackEdges, PaperFig3Cycle) {
  // a -> b -> c -> d -> a : the backward edge d->a is removed.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const auto removed = remove_back_edges(g, 0);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], (std::pair<std::uint32_t, std::uint32_t>{3, 0}));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(3, 0));
}

TEST(BackEdges, ForwardDagUntouched) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_TRUE(remove_back_edges(g, 0).empty());
}

TEST(BackEdges, UnreachableComponentsProcessed) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 2);  // cycle unreachable from root 0
  remove_back_edges(g, 0);
  EXPECT_FALSE(has_cycle(g));
}

TEST(BackEdges, RandomGraphsBecomeAcyclicProperty) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.below(30));
    Digraph g(n);
    const std::uint32_t edges = static_cast<std::uint32_t>(rng.below(4 * n));
    for (std::uint32_t e = 0; e < edges; ++e)
      g.add_edge(static_cast<std::uint32_t>(rng.below(n)),
                 static_cast<std::uint32_t>(rng.below(n)));
    remove_back_edges(g, 0);
    EXPECT_FALSE(has_cycle(g)) << "trial " << trial;
  }
}

// ---- Path enumeration --------------------------------------------------------------

TEST(Paths, EnumeratesBothRoutes) {
  // 0 -> 1 -> 2 and 0 -> 2 (the paper's Fig. 3 (c) a..c situation).
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const std::vector<bool> blocked(3, false);
  const auto paths = paths_avoiding(g, 0, 2, blocked);
  ASSERT_EQ(paths.size(), 2u);
}

TEST(Paths, BlockedInteriorSkipped) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  std::vector<bool> blocked(4, false);
  blocked[1] = true;  // node 1 may not be an interior node
  const auto paths = paths_avoiding(g, 0, 3, blocked);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<std::uint32_t>{0, 2, 3}));
}

TEST(Paths, BlockedEndpointsAreExempt) {
  Digraph g(2);
  g.add_edge(0, 1);
  std::vector<bool> blocked = {true, true};
  EXPECT_EQ(paths_avoiding(g, 0, 1, blocked).size(), 1u);
}

TEST(Paths, MaxPathsCapRespected) {
  // A ladder graph with exponentially many paths.
  const std::uint32_t rungs = 16;
  Digraph g(2 * rungs + 2);
  for (std::uint32_t i = 0; i < rungs; ++i) {
    const std::uint32_t from = i == 0 ? 0 : 2 * i;
    g.add_edge(from, 2 * i + 1);
    g.add_edge(from, 2 * i + 2);
    if (i + 1 < rungs) {
      g.add_edge(2 * i + 1, 2 * (i + 1));
      g.add_edge(2 * i + 2, 2 * (i + 1));
    } else {
      g.add_edge(2 * i + 1, 2 * rungs + 1);
      g.add_edge(2 * i + 2, 2 * rungs + 1);
    }
  }
  PathLimits limits;
  limits.max_paths = 100;
  const std::vector<bool> blocked(g.size(), false);
  const auto paths = paths_avoiding(g, 0, 2 * rungs + 1, blocked, limits);
  EXPECT_EQ(paths.size(), 100u);
}

TEST(Paths, SameNodeYieldsNothing) {
  Digraph g(2);
  g.add_edge(0, 1);
  const std::vector<bool> blocked(2, false);
  EXPECT_TRUE(paths_avoiding(g, 0, 0, blocked).empty());
}

// ---- Maximum spanning forest --------------------------------------------------------

TEST(Mst, PicksHeaviestEdges) {
  // Triangle with weights 1, 2, 3: the MST keeps 3 and 2.
  std::vector<WeightedEdge> edges = {
      {0, 1, 1.0, 0}, {1, 2, 2.0, 1}, {0, 2, 3.0, 2}};
  const auto chosen = max_spanning_forest(3, edges);
  ASSERT_EQ(chosen.size(), 2u);
  double total = 0;
  for (std::size_t i : chosen) total += edges[i].weight;
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(Mst, ForestOnDisconnectedComponents) {
  std::vector<WeightedEdge> edges = {{0, 1, 1.0, 0}, {2, 3, 1.0, 1}};
  const auto chosen = max_spanning_forest(4, edges);
  EXPECT_EQ(chosen.size(), 2u);
}

TEST(Mst, DeterministicTieBreaking) {
  std::vector<WeightedEdge> edges = {
      {0, 1, 5.0, 0}, {1, 2, 5.0, 1}, {0, 2, 5.0, 2}};
  const auto a = max_spanning_forest(3, edges);
  const auto b = max_spanning_forest(3, edges);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Mst, PaperFig3Example) {
  // Fig. 3 (d)->(e): pair edges a->c (MAX via direct), a->e (3 via b),
  // c->e (1 via d'): the MST keeps the MAX edge and the weight-3 edge.
  constexpr double kMax = 1e18;
  std::vector<WeightedEdge> edges = {
      {0, 1, kMax, 0},  // a -> c, direct
      {0, 2, 3.0, 1},   // a -> e, via b (HPC 3)
      {1, 2, 1.0, 2},   // c -> e, via d (HPC 1)
  };
  const auto chosen = max_spanning_forest(3, edges);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(edges[chosen[0]].payload, 0u);
  EXPECT_EQ(edges[chosen[1]].payload, 1u);
}

TEST(Digraph, AddEdgeValidatesAndDeduplicates) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.adj[0].size(), 1u);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
}

}  // namespace
}  // namespace scag::cfg
