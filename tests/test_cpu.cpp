// Tests for the CPU interpreter: architectural semantics, flags/branches,
// timing visibility, HPC event attribution, branch prediction, transient
// execution, sampling, and execution limits.
#include <gtest/gtest.h>

#include "cpu/interpreter.h"
#include "cpu/predictor.h"
#include "isa/assembler.h"
#include "isa/builder.h"

namespace scag::cpu {
namespace {

using isa::Opcode;
using isa::Program;
using isa::Reg;
using isa::assemble;
using trace::HpcEvent;

RunResult run_asm(const std::string& src, ExecOptions opts = {}) {
  Interpreter interp(opts);
  return interp.run(assemble(src));
}

// ---- ALU and data movement ---------------------------------------------------

struct AluCase {
  std::string src;
  Reg out_reg;
  std::uint64_t expected;
  std::string name;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, ComputesExpectedValue) {
  const AluCase& c = GetParam();
  const RunResult r = run_asm(c.src + "\nhlt\n");
  EXPECT_EQ(r.regs[c.out_reg], c.expected) << c.src;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemantics,
    ::testing::Values(
        AluCase{"mov rax, 7", Reg::RAX, 7, "mov_imm"},
        AluCase{"mov rax, 7\nmov rbx, rax", Reg::RBX, 7, "mov_reg"},
        AluCase{"mov rax, 5\nadd rax, 3", Reg::RAX, 8, "add"},
        AluCase{"mov rax, 5\nsub rax, 9", Reg::RAX,
                static_cast<std::uint64_t>(-4), "sub_wraps"},
        AluCase{"mov rax, 6\nimul rax, 7", Reg::RAX, 42, "imul"},
        AluCase{"mov rax, 12\nxor rax, 10", Reg::RAX, 6, "xor"},
        AluCase{"mov rax, 12\nand rax, 10", Reg::RAX, 8, "and"},
        AluCase{"mov rax, 12\nor rax, 3", Reg::RAX, 15, "or"},
        AluCase{"mov rax, 3\nshl rax, 4", Reg::RAX, 48, "shl"},
        AluCase{"mov rax, 48\nshr rax, 4", Reg::RAX, 3, "shr"},
        AluCase{"mov rax, 41\ninc rax", Reg::RAX, 42, "inc"},
        AluCase{"mov rax, 43\ndec rax", Reg::RAX, 42, "dec"},
        AluCase{"mov rax, 5\nneg rax", Reg::RAX,
                static_cast<std::uint64_t>(-5), "neg"},
        AluCase{"mov rax, 0\nnot rax", Reg::RAX, ~0ULL, "not"},
        AluCase{"lea rax, [0x1234]", Reg::RAX, 0x1234, "lea_abs"},
        AluCase{"mov rbx, 0x100\nlea rax, [rbx+rbx*2+4]", Reg::RAX, 0x304,
                "lea_expr"}),
    [](const auto& info) { return info.param.name; });

TEST(Machine, MemoryRoundTrip) {
  const RunResult r = run_asm(R"(
      mov rax, 123
      mov [0x10000], rax
      mov rbx, [0x10000]
      add [0x10000], rbx
      mov rcx, [0x10000]
      hlt
  )");
  EXPECT_EQ(r.regs[Reg::RBX], 123u);
  EXPECT_EQ(r.regs[Reg::RCX], 246u);
  EXPECT_EQ(r.memory.read(0x10000), 246u);
}

TEST(Machine, InitialDataVisible) {
  const RunResult r = run_asm(R"(
      .word 0x9000 77
      mov rax, [0x9000]
      hlt
  )");
  EXPECT_EQ(r.regs[Reg::RAX], 77u);
}

TEST(Machine, PushPopAndPushRsp) {
  const RunResult r = run_asm(R"(
      mov rax, 11
      push rax
      mov rax, 22
      pop rbx
      push rsp
      pop rsp
      hlt
  )");
  EXPECT_EQ(r.regs[Reg::RBX], 11u);
  // push rsp / pop rsp must be a net no-op (pre-decrement value pushed).
  ExecOptions defaults;
  EXPECT_EQ(r.regs[Reg::RSP], defaults.stack_base);
}

TEST(Machine, CallRetNesting) {
  const RunResult r = run_asm(R"(
      .entry main
      helper2:
        mov rcx, 3
        ret
      helper1:
        call helper2
        add rcx, 10
        ret
      main:
        call helper1
        add rcx, 100
        hlt
  )");
  EXPECT_EQ(r.regs[Reg::RCX], 113u);
  EXPECT_EQ(r.profile.exit, trace::ExitReason::kHalted);
}

TEST(Machine, RetFromMainHaltsCleanly) {
  const RunResult r = run_asm("mov rax, 1\nret\n");
  EXPECT_EQ(r.profile.exit, trace::ExitReason::kHalted);
}

// ---- Conditional branches ------------------------------------------------------

struct BranchCase {
  std::string cmp;     // sets flags
  std::string branch;  // conditional jump mnemonic
  bool taken;
  std::string name;
};

class BranchSemantics : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchSemantics, TakesOrFallsThrough) {
  const BranchCase& c = GetParam();
  // rax = 1 if branch taken else 2.
  const std::string src = c.cmp + "\n" + c.branch + " taken\n" +
                          "mov rax, 2\nhlt\ntaken:\nmov rax, 1\nhlt\n";
  const RunResult r = run_asm(src);
  EXPECT_EQ(r.regs[Reg::RAX], c.taken ? 1u : 2u) << src;
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, BranchSemantics,
    ::testing::Values(
        BranchCase{"mov rbx, 5\ncmp rbx, 5", "je", true, "je_eq"},
        BranchCase{"mov rbx, 5\ncmp rbx, 6", "je", false, "je_ne"},
        BranchCase{"mov rbx, 5\ncmp rbx, 6", "jne", true, "jne"},
        BranchCase{"mov rbx, -1\ncmp rbx, 0", "jl", true, "jl_signed"},
        BranchCase{"mov rbx, -1\ncmp rbx, 0", "jb", false, "jb_unsigned"},
        BranchCase{"mov rbx, 1\ncmp rbx, 2", "jb", true, "jb_below"},
        BranchCase{"mov rbx, 3\ncmp rbx, 2", "ja", true, "ja_above"},
        BranchCase{"mov rbx, 2\ncmp rbx, 2", "jae", true, "jae_equal"},
        BranchCase{"mov rbx, 2\ncmp rbx, 2", "jbe", true, "jbe_equal"},
        BranchCase{"mov rbx, 2\ncmp rbx, 2", "jge", true, "jge_equal"},
        BranchCase{"mov rbx, 2\ncmp rbx, 2", "jle", true, "jle_equal"},
        BranchCase{"mov rbx, 3\ncmp rbx, 2", "jg", true, "jg"},
        BranchCase{"mov rbx, 0\ntest rbx, rbx", "je", true, "test_zero"},
        BranchCase{"mov rbx, -1\ntest rbx, rbx", "jl", true, "test_sign"}),
    [](const auto& info) { return info.param.name; });

TEST(Branches, DecJneLoopRunsExactly) {
  const RunResult r = run_asm(R"(
      mov rcx, 10
      mov rax, 0
      loop:
      inc rax
      dec rcx
      jne loop
      hlt
  )");
  EXPECT_EQ(r.regs[Reg::RAX], 10u);
}

// ---- Timing ---------------------------------------------------------------------

TEST(Timing, RdtscpIsMonotonic) {
  const RunResult r = run_asm(R"(
      rdtscp r8
      nop
      rdtscp r9
      hlt
  )");
  EXPECT_GT(r.regs[Reg::R9], r.regs[Reg::R8]);
}

TEST(Timing, CachedReloadIsMeasurablyFaster) {
  // The core primitive of every timing attack in this repo.
  const RunResult r = run_asm(R"(
      mov rax, [0x20000]   ; cold: DRAM
      rdtscp r8
      mov rax, [0x20000]   ; hot: L1
      rdtscp r9
      sub r9, r8
      clflush [0x20000]
      rdtscp r10
      mov rax, [0x20000]   ; flushed: DRAM again
      rdtscp r11
      sub r11, r10
      hlt
  )");
  const std::uint64_t hot = r.regs[Reg::R9];
  const std::uint64_t cold = r.regs[Reg::R11];
  EXPECT_LT(hot, 60u);
  EXPECT_GT(cold, 150u);
}

TEST(Timing, FlushLatencyRevealsPresence) {
  // The Flush+Flush primitive.
  const RunResult r = run_asm(R"(
      mov rax, [0x30000]
      rdtscp r8
      clflush [0x30000]    ; present: slow
      rdtscp r9
      sub r9, r8
      rdtscp r10
      clflush [0x30000]    ; absent: fast
      rdtscp r11
      sub r11, r10
      hlt
  )");
  EXPECT_GT(r.regs[Reg::R9], r.regs[Reg::R11]);
}

// ---- HPC events ---------------------------------------------------------------

TEST(Hpc, LoadEventsAttributedToInstruction) {
  const Program p = assemble(R"(
      mov rax, [0x40000]
      mov rbx, [0x40000]
      hlt
  )");
  Interpreter interp;
  const RunResult r = interp.run(p);
  EXPECT_EQ(r.profile.per_instr[0][HpcEvent::kL1dLoadMiss], 1u);
  EXPECT_EQ(r.profile.per_instr[0][HpcEvent::kLlcLoadMiss], 1u);
  // Two cache-miss events: the cold instruction fetch and the data load.
  EXPECT_EQ(r.profile.per_instr[0][HpcEvent::kCacheMiss], 2u);
  EXPECT_EQ(r.profile.per_instr[0][HpcEvent::kL1iLoadMiss], 1u);
  EXPECT_EQ(r.profile.per_instr[1][HpcEvent::kL1dLoadHit], 1u);
  EXPECT_EQ(r.profile.per_instr[1][HpcEvent::kL1dLoadMiss], 0u);
}

TEST(Hpc, StoreEvents) {
  const Program p = assemble(R"(
      mov [0x50000], rax
      mov [0x50000], rbx
      hlt
  )");
  Interpreter interp;
  const RunResult r = interp.run(p);
  EXPECT_EQ(r.profile.per_instr[0][HpcEvent::kLlcStoreMiss], 1u);
  EXPECT_EQ(r.profile.per_instr[1][HpcEvent::kL1dStoreHit], 1u);
}

TEST(Hpc, FlushOfPresentLineCountsCacheMiss) {
  const Program p = assemble(R"(
      mov rax, [0x60000]
      clflush [0x60000]
      clflush [0x60000]
      hlt
  )");
  Interpreter interp;
  const RunResult r = interp.run(p);
  EXPECT_EQ(r.profile.per_instr[1][HpcEvent::kCacheMiss], 1u);
  EXPECT_EQ(r.profile.per_instr[2][HpcEvent::kCacheMiss], 0u);
}

TEST(Hpc, LineAddressesRecorded) {
  const Program p = assemble(R"(
      mov rax, [0x70008]
      clflush [0x70040]
      hlt
  )");
  Interpreter interp;
  const RunResult r = interp.run(p);
  EXPECT_TRUE(r.profile.line_addrs[0].count(0x70000));  // line-aligned
  EXPECT_TRUE(r.profile.line_addrs[1].count(0x70040));  // flushed addr too
}

TEST(Hpc, BranchEventsOnColdAndMispredicted) {
  const Program p = assemble(R"(
      mov rcx, 8
      loop:
      dec rcx
      jne loop
      hlt
  )");
  Interpreter interp;
  const RunResult r = interp.run(p);
  const std::size_t jne_idx = 2;
  EXPECT_EQ(r.profile.per_instr[jne_idx][HpcEvent::kBranchLoadMiss], 1u);
  // Cold predictor says not-taken; the branch is taken 7 times then falls
  // through: at least the first and last resolutions mispredict.
  EXPECT_GE(r.profile.per_instr[jne_idx][HpcEvent::kBranchMiss], 2u);
  EXPECT_LE(r.profile.per_instr[jne_idx][HpcEvent::kBranchMiss], 4u);
}

TEST(Hpc, FirstCycleTimestampsAreOrdered) {
  const Program p = assemble("nop\nnop\nnop\nhlt\n");
  Interpreter interp;
  const RunResult r = interp.run(p);
  EXPECT_GT(r.profile.first_cycle[0], 0u);
  EXPECT_LT(r.profile.first_cycle[0], r.profile.first_cycle[1]);
  EXPECT_LT(r.profile.first_cycle[1], r.profile.first_cycle[2]);
}

TEST(Hpc, TotalsMatchPerInstrSums) {
  const Program p = assemble(R"(
      mov rcx, 50
      loop:
      mov rax, [0x80000]
      mov [0x80040], rax
      dec rcx
      jne loop
      hlt
  )");
  Interpreter interp;
  const RunResult r = interp.run(p);
  trace::HpcCounters sum;
  for (const auto& c : r.profile.per_instr) sum += c;
  EXPECT_EQ(sum, r.profile.totals);
}

// ---- Speculation ---------------------------------------------------------------

TEST(Speculation, TransientLoadLeavesCacheFootprint) {
  // Train a bounds check, then trigger it out of bounds; the wrong-path
  // load must cache the probe line even though it never retires.
  const std::string gadget = R"(
      .entry main
      .word 0x91000 8
      gadget:
        cmp rdi, [0x91000]
        jae out
        mov rax, [0x90000]
      out:
        ret
      main:
        mov rcx, 6
        train:
        mov rdi, 0
        call gadget
        dec rcx
        jne train
        clflush [0x90000]
        mfence
        mov rdi, 100       ; out of bounds
        call gadget
        lfence
        rdtscp r8
        mov rax, [0x90000]
        rdtscp r9
        sub r9, r8
        hlt
  )";
  ExecOptions with_spec;
  const RunResult leak = Interpreter(with_spec).run(assemble(gadget));
  EXPECT_LT(leak.regs[Reg::R9], 100u) << "transient load did not cache line";

  ExecOptions no_spec;
  no_spec.speculation = false;
  const RunResult safe = Interpreter(no_spec).run(assemble(gadget));
  EXPECT_GT(safe.regs[Reg::R9], 100u) << "line cached without speculation";
}

TEST(Speculation, TransientStoresNeverCommit) {
  const std::string src = R"(
      .entry main
      main:
        mov rcx, 6
        train:
        mov rdi, 0
        cmp rdi, 1
        jae skip
        nop
      skip:
        dec rcx
        jne train
        mov rdi, 5        ; now the jae is taken but predicted not-taken
        cmp rdi, 1
        jae done
        mov [0x95000], rdi   ; wrong path: must not commit
      done:
        mov rax, [0x95000]
        hlt
  )";
  const RunResult r = Interpreter().run(assemble(src));
  EXPECT_EQ(r.regs[Reg::RAX], 0u) << "transient store leaked to memory";
  EXPECT_EQ(r.memory.read(0x95000), 0u);
}

TEST(Speculation, ArchitecturalStateUnchangedBySquash) {
  const std::string src = R"(
      .entry main
      main:
        mov rcx, 6
        mov rbx, 42
        train:
        mov rdi, 0
        cmp rdi, 1
        jae skip
        nop
      skip:
        dec rcx
        jne train
        mov rdi, 5
        cmp rdi, 1
        jae done
        mov rbx, 999      ; wrong path
      done:
        hlt
  )";
  const RunResult r = Interpreter().run(assemble(src));
  EXPECT_EQ(r.regs[Reg::RBX], 42u);
}

// ---- Sampling & limits -----------------------------------------------------------

TEST(Sampling, PeriodicSnapshotsAreMonotone) {
  ExecOptions opts;
  opts.sample_interval = 100;
  const RunResult r = run_asm(R"(
      mov rcx, 200
      loop:
      mov rax, [0xA0000]
      dec rcx
      jne loop
      hlt
  )", opts);
  ASSERT_GT(r.profile.samples.size(), 2u);
  for (std::size_t i = 1; i < r.profile.samples.size(); ++i) {
    EXPECT_GE(r.profile.samples[i][HpcEvent::kL1dLoadHit],
              r.profile.samples[i - 1][HpcEvent::kL1dLoadHit]);
  }
}

TEST(Sampling, NoiseIsDeterministicPerSeed) {
  ExecOptions opts;
  opts.sample_interval = 50;
  opts.sample_noise = 0.2;
  opts.noise_seed = 77;
  const std::string src = R"(
      mov rcx, 100
      loop:
      mov rax, [0xB0000]
      dec rcx
      jne loop
      hlt
  )";
  const RunResult a = Interpreter(opts).run(assemble(src));
  const RunResult b = Interpreter(opts).run(assemble(src));
  ASSERT_EQ(a.profile.samples.size(), b.profile.samples.size());
  for (std::size_t i = 0; i < a.profile.samples.size(); ++i)
    EXPECT_EQ(a.profile.samples[i], b.profile.samples[i]);
}

TEST(Limits, InstructionBudgetStopsRunaway) {
  ExecOptions opts;
  opts.max_retired = 1000;
  const RunResult r = run_asm("loop:\njmp loop\n", opts);
  EXPECT_EQ(r.profile.exit, trace::ExitReason::kInstrLimit);
  EXPECT_EQ(r.profile.retired, 1000u);
}

TEST(Limits, JumpOutsideProgramReported) {
  // ret to a garbage address left on the stack.
  const RunResult r = run_asm(R"(
      mov rax, 0x12345678
      push rax
      ret
  )");
  EXPECT_EQ(r.profile.exit, trace::ExitReason::kBadInstruction);
}

TEST(OwnerAttribution, VictimRangesTagCacheLines) {
  // Code inside victim_ranges owns the lines it touches; everything else
  // is the attacker. Observable through the hierarchy's owner occupancy.
  const Program p = assemble(R"(
      .entry main
      victim_fn:
        mov rax, [0x70000]
        ret
      main:
        mov rbx, [0x80000]
        call victim_fn
        hlt
  )");
  ExecOptions opts;
  opts.victim_ranges.push_back(
      {p.label("victim_fn"), p.label("main")});
  Interpreter interp(opts);
  interp.run(p);
  const auto& llc = interp.hierarchy().llc();
  EXPECT_GT(llc.occupancy(cache::Owner::kVictim), 0.0);
  EXPECT_GT(llc.occupancy(cache::Owner::kAttacker), 0.0);
}

TEST(OwnerAttribution, OccupancySamplesRecorded) {
  ExecOptions opts;
  opts.sample_interval = 100;
  const RunResult r = Interpreter(opts).run(assemble(R"(
      mov rcx, 64
      loop:
      mov rax, [rcx*8+0x90000]
      dec rcx
      jne loop
      hlt
  )"));
  ASSERT_FALSE(r.profile.occupancy_samples.empty());
  // AO grows as the loop streams lines in, and AO + IO <= 1 throughout.
  const auto& first = r.profile.occupancy_samples.front();
  const auto& last = r.profile.occupancy_samples.back();
  EXPECT_GE(last.first, first.first);
  for (const auto& [ao, io] : r.profile.occupancy_samples) {
    EXPECT_GE(ao, 0.0);
    EXPECT_LE(ao + io, 1.0 + 1e-12);
  }
}

// ---- Branch predictor unit tests ----------------------------------------------

TEST(Predictor, WarmsUpTowardTaken) {
  BranchPredictor p;
  EXPECT_TRUE(p.predict(0x100).btb_cold);
  EXPECT_FALSE(p.predict(0x100).btb_cold);
  EXPECT_FALSE(p.predict(0x100).taken);  // static not-taken
  p.update(0x100, true);
  p.update(0x100, true);
  EXPECT_TRUE(p.predict(0x100).taken);
  p.update(0x100, false);
  p.update(0x100, false);
  EXPECT_FALSE(p.predict(0x100).taken);
}

TEST(Predictor, BranchesAreIndependent) {
  BranchPredictor p;
  p.update(0x100, true);
  p.update(0x100, true);
  EXPECT_TRUE(p.predict(0x100).taken);
  EXPECT_FALSE(p.predict(0x200).taken);
}

}  // namespace
}  // namespace scag::cpu
