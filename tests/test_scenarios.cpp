// Differential + property battery for the scenario matrix
// (eval/scenario_matrix.h): the attack x defense x noise x spy-count grid
// built on the SHARP-defended LLC, the cooperative multi-spy PoCs, and the
// deterministic trace merge.
//
//   - every noise-free grid cell's modeled target goes through the full
//     differential harness (tests/differential_scan.h): serial + batch,
//     string + compiled kernels, scalar + SIMD DP, index off/on, and the
//     zero-copy store twin — all bit-identical to the exhaustive oracle;
//   - cooperative recovery: merged multi-spy runs recover the planted
//     secret under both defenses, while a lone spy only ever recovers
//     secrets inside its own slot share;
//   - trace merge: pure-function determinism (same runs merge
//     bit-identically), round-robin interleaving, rebased programs that
//     still validate;
//   - SHARP telemetry: Prime+Probe-family runs against the defended LLC
//     raise alarms, Flush+Reload runs never do (clflush bypasses the
//     replacement logic entirely).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "cpu/interpreter.h"
#include "differential_scan.h"
#include "eval/experiments.h"
#include "eval/scenario_matrix.h"
#include "trace/merge.h"

namespace scag {
namespace {

using eval::ScenarioCell;

/// All noise-free cells of the full grid: the differential battery's
/// target set. Noise cells are excluded only to bound runtime; the bench
/// covers them with the same equivalence check.
std::vector<ScenarioCell> noise_free_cells() {
  std::vector<ScenarioCell> out;
  for (const ScenarioCell& cell : eval::scenario_grid(/*smoke=*/false))
    if (cell.noise == 0.0) out.push_back(cell);
  return out;
}

/// Raw execution of one spy of a multi-spy cell under the canonical
/// experiment options (undefended unless `defense` says otherwise).
cpu::RunResult run_spy_raw(const std::string& attack, int spy_index,
                           int num_spies, std::uint64_t secret,
                           cache::DefensePolicy defense) {
  attacks::PocConfig pc;
  pc.secret = secret;
  core::ModelConfig cfg = eval::experiment_model_config();
  cfg.exec.cache_config.defense = defense;
  cpu::Interpreter interp(cfg.exec);
  return interp.run(
      attacks::multi_spy_by_name(attack).build_spy(pc, spy_index, num_spies));
}

// ---- Grid shape -------------------------------------------------------------

TEST(ScenarioGrid, FullGridCoversEveryAxisCombination) {
  const std::vector<ScenarioCell> grid = eval::scenario_grid(false);
  // 4 single-spy PoCs x 2 defenses x 3 noise levels
  //   + 2 multi-spy attacks x 2 defenses x 3 noise levels x 3 spy counts.
  EXPECT_EQ(grid.size(), 4u * 2 * 3 + 2u * 2 * 3 * 3);
  std::set<std::string> labels;
  std::set<std::string> keys;
  for (const ScenarioCell& cell : grid) {
    labels.insert(cell.label());
    const std::string key = cell.telemetry_key();
    keys.insert(key);
    for (char c : key)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')
          << key;
  }
  EXPECT_EQ(labels.size(), grid.size()) << "cell labels must be unique";
  EXPECT_EQ(keys.size(), grid.size()) << "telemetry keys must be unique";
}

TEST(ScenarioGrid, SmokeGridIsASubsetOfTheFullGrid) {
  std::set<std::string> full;
  for (const ScenarioCell& cell : eval::scenario_grid(false))
    full.insert(cell.label());
  const std::vector<ScenarioCell> smoke = eval::scenario_grid(true);
  EXPECT_LT(smoke.size(), full.size());
  for (const ScenarioCell& cell : smoke)
    EXPECT_TRUE(full.count(cell.label())) << cell.label();
}

// ---- The differential matrix ------------------------------------------------

// Every (attack, defense, spy-count) cell's target, through every scan
// path. This is the acceptance criterion of the matrix: one modeled
// behavior, N execution strategies, zero bits of divergence.
TEST(ScenarioDifferential, EveryCellVerdictBitIdenticalAcrossAllScanPaths) {
  core::Detector detector = eval::make_scenario_detector();
  std::vector<core::CstBbs> targets;
  for (const ScenarioCell& cell : noise_free_cells())
    targets.push_back(eval::run_scenario_target(cell, /*secret=*/7).target);
  ASSERT_EQ(targets.size(), 4u * 2 + 2u * 2 * 3);
  testutil::run_differential_matrix(detector, targets, "scenario-matrix");
}

// The same cells against the zero-copy store twin: oracle verdicts come
// from the text-enrolled detector, candidates from the mmap-format image.
TEST(ScenarioDifferential, EveryCellVerdictSurvivesTheStoreRoundTrip) {
  core::Detector detector = eval::make_scenario_detector();
  std::vector<core::CstBbs> targets;
  for (const ScenarioCell& cell : noise_free_cells())
    targets.push_back(eval::run_scenario_target(cell, /*secret=*/11).target);
  testutil::run_store_differential_matrix(detector, targets,
                                          "scenario-matrix-store");
}

// eval::exhaustive_scan is the bench's gtest-free twin of
// testutil::exhaustive_oracle; they must agree bit for bit, or the bench's
// nonzero-exit contract proves nothing.
TEST(ScenarioDifferential, BenchOracleMatchesTestOracle) {
  const core::Detector detector = eval::make_scenario_detector();
  for (const ScenarioCell& cell : eval::scenario_grid(/*smoke=*/true)) {
    const core::CstBbs target = eval::run_scenario_target(cell, 5).target;
    const core::Detection a = testutil::exhaustive_oracle(detector, target);
    const core::Detection b = eval::exhaustive_scan(detector, target);
    EXPECT_TRUE(eval::detection_equivalent(a, b)) << cell.label();
    EXPECT_EQ(testutil::score_bits(a.best_score),
              testutil::score_bits(b.best_score))
        << cell.label();
  }
}

// ---- Cell semantics ---------------------------------------------------------

TEST(ScenarioCells, UndefendedSingleSpyCellsMatchTheBaselineProtocol) {
  // The paper's own setting — one spy, no defense, no noise — must stay
  // perfect: detected, correctly classified, secret recovered.
  const core::Detector detector = eval::make_scenario_detector();
  for (const ScenarioCell& cell : noise_free_cells()) {
    if (cell.spies != 1 || cell.defense != cache::DefensePolicy::kNone)
      continue;
    const eval::CellResult res =
        eval::run_scenario_cell(detector, cell, {5, 12});
    EXPECT_DOUBLE_EQ(res.detection_rate, 1.0) << cell.label();
    EXPECT_DOUBLE_EQ(res.classification_rate, 1.0) << cell.label();
    EXPECT_DOUBLE_EQ(res.recovery_rate, 1.0) << cell.label();
    EXPECT_EQ(res.sharp_alarms, 0u) << cell.label();
  }
}

TEST(ScenarioCells, SamplingNoiseDoesNotPerturbTheModeledBehavior) {
  // ExecOptions::sample_noise jitters the sampled HPC snapshot series
  // only; per-instruction attribution — what CST-BBS modeling consumes —
  // stays exact, so a noisy cell's best score is bit-identical to the
  // clean cell's.
  const core::Detector detector = eval::make_scenario_detector();
  ScenarioCell clean{"FR-IAIK", core::Family::kFlushReload,
                     cache::DefensePolicy::kNone, 0.0, 1};
  ScenarioCell noisy = clean;
  noisy.noise = 0.4;
  const core::Detection a =
      detector.scan(eval::run_scenario_target(clean, 9).target);
  const core::Detection b =
      detector.scan(eval::run_scenario_target(noisy, 9).target);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(testutil::score_bits(a.best_score),
            testutil::score_bits(b.best_score));
}

TEST(ScenarioCells, SharpAlarmsFireForPrimeProbeButNeverFlushReload) {
  // Prime+Probe evicts the victim's lines through the replacement logic,
  // which is exactly where SHARP watches; Flush+Reload uses clflush, which
  // invalidates lines without ever selecting a victim, so the defended
  // cell stays alarm-free.
  ScenarioCell pp{"PP-IAIK", core::Family::kPrimeProbe,
                  cache::DefensePolicy::kSharp, 0.0, 1};
  EXPECT_GE(eval::run_scenario_target(pp, 5).sharp_alarms, 1u);
  ScenarioCell fr{"FR-IAIK", core::Family::kFlushReload,
                  cache::DefensePolicy::kSharp, 0.0, 1};
  EXPECT_EQ(eval::run_scenario_target(fr, 5).sharp_alarms, 0u);
  pp.defense = cache::DefensePolicy::kNone;
  EXPECT_EQ(eval::run_scenario_target(pp, 5).sharp_alarms, 0u);
}

// ---- Multi-spy cooperation --------------------------------------------------

TEST(MultiSpy, CooperativeRecoveryWorksAcrossSpyCountsAndDefenses) {
  const core::Detector detector = eval::make_scenario_detector();
  for (const attacks::MultiSpySpec& spec : attacks::all_multi_spy_specs()) {
    for (const cache::DefensePolicy defense :
         {cache::DefensePolicy::kNone, cache::DefensePolicy::kSharp}) {
      for (const int spies : {2, 3, 4}) {
        const ScenarioCell cell{spec.name, spec.family, defense, 0.0, spies};
        const eval::ScenarioRun run = eval::run_scenario_target(cell, 14);
        EXPECT_TRUE(run.recovered) << cell.label();
        const core::Detection d = detector.scan(run.target);
        EXPECT_EQ(d.verdict, spec.family) << cell.label();
      }
    }
  }
}

TEST(MultiSpy, ALoneSpyOnlyRecoversSecretsInItsOwnShare) {
  // Two spies split the 16 slots as [0,8) and [8,16). With the secret
  // planted at 9, only spy 1 can observe it; spy 0's local argmax never
  // leaves its own share. Cooperative recovery (summed histograms) is what
  // reconstructs the secret — that is the point of the attack.
  const attacks::Layout layout;
  for (const attacks::MultiSpySpec& spec : attacks::all_multi_spy_specs()) {
    const cpu::RunResult spy0 =
        run_spy_raw(spec.name, 0, 2, 9, cache::DefensePolicy::kNone);
    const cpu::RunResult spy1 =
        run_spy_raw(spec.name, 1, 2, 9, cache::DefensePolicy::kNone);
    EXPECT_EQ(spy1.memory.read(layout.recovered_addr), 9u) << spec.name;
    EXPECT_LT(spy0.memory.read(layout.recovered_addr), 8u) << spec.name;

    // The histogram shares are disjoint, and their union votes for the
    // planted slot.
    std::uint64_t best_slot = 0;
    std::uint64_t best_votes = 0;
    for (std::uint64_t s = 0; s < attacks::Layout::kNumSlots; ++s) {
      const std::uint64_t votes = spy0.memory.read(layout.histogram + 8 * s) +
                                  spy1.memory.read(layout.histogram + 8 * s);
      if (votes > best_votes) {
        best_votes = votes;
        best_slot = s;
      }
    }
    EXPECT_GT(best_votes, 0u) << spec.name;
    EXPECT_EQ(best_slot, 9u) << spec.name;
  }
}

TEST(MultiSpy, IndividualSpyTracesStillScoreAboveThreshold) {
  // The matrix's honest negative result: splitting the attack across
  // cooperating spies does NOT push a lone spy's trace below the
  // detection threshold — CST-BBS matches attack *behavior*, and each spy
  // still primes/flushes and probes/reloads its share. What the split
  // does limit is recovery (see ALoneSpyOnlyRecoversSecretsInItsOwnShare).
  const core::Detector detector = eval::make_scenario_detector();
  for (const attacks::MultiSpySpec& spec : attacks::all_multi_spy_specs()) {
    const ScenarioCell cell{spec.name, spec.family,
                            cache::DefensePolicy::kNone, 0.0, 2};
    for (const core::CstBbs& target : eval::run_spy_targets(cell, 5)) {
      const core::Detection d = detector.scan(target);
      EXPECT_TRUE(d.is_attack()) << spec.name;
      EXPECT_GE(d.best_score, eval::kThreshold) << spec.name;
    }
  }
}

TEST(MultiSpy, InvalidSpySplitsThrow) {
  const attacks::PocConfig pc;
  for (const attacks::MultiSpySpec& spec : attacks::all_multi_spy_specs()) {
    EXPECT_THROW(spec.build_spy(pc, 0, 1), std::invalid_argument) << spec.name;
    EXPECT_THROW(spec.build_spy(pc, 0, 5), std::invalid_argument) << spec.name;
    EXPECT_THROW(spec.build_spy(pc, 2, 2), std::invalid_argument) << spec.name;
    EXPECT_THROW(spec.build_spy(pc, -1, 2), std::invalid_argument)
        << spec.name;
  }
  EXPECT_THROW(attacks::multi_spy_by_name("NoSuchAttack"), std::out_of_range);
}

TEST(MultiSpy, SpecsAreRegisteredButKeptOutOfThePocRegistry) {
  // all_pocs() drives enrollment corpora and registry-wide tests that
  // assume standalone single-process attacks; the cooperative builders
  // live in their own list.
  ASSERT_EQ(attacks::all_multi_spy_specs().size(), 2u);
  for (const attacks::MultiSpySpec& spec : attacks::all_multi_spy_specs()) {
    for (const attacks::PocSpec& poc : attacks::all_pocs())
      EXPECT_NE(poc.name, spec.name);
    EXPECT_NE(spec.family, core::Family::kBenign);
  }
}

// ---- Trace merge ------------------------------------------------------------

TEST(TraceMerge, InterleavingIsRoundRobinAndCollisionFree) {
  // fc encodes cycle+1 with 0 = never executed, which the merge preserves.
  EXPECT_EQ(trace::interleave_first_cycle(0, 1, 3), 0u);
  for (const std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    std::set<std::uint64_t> seen;
    for (std::size_t k = 0; k < n; ++k) {
      std::uint64_t prev = 0;
      for (std::uint64_t fc = 1; fc <= 40; ++fc) {
        const std::uint64_t merged = trace::interleave_first_cycle(fc, k, n);
        EXPECT_EQ((merged - 1) % n, k);       // spy k owns residue k
        EXPECT_GT(merged, prev);              // order-preserving per spy
        EXPECT_TRUE(seen.insert(merged).second)  // no two events collide
            << "fc=" << fc << " k=" << k << " n=" << n;
        prev = merged;
      }
    }
  }
}

TEST(TraceMerge, MergingTheSameRunsTwiceIsBitIdentical) {
  const attacks::MultiSpySpec& spec = attacks::multi_spy_by_name("MultiSpy-PP");
  auto merge_once = [&spec]() {
    std::vector<cpu::RunResult> results;
    std::vector<isa::Program> programs;
    attacks::PocConfig pc;
    pc.secret = 3;
    for (int k = 0; k < 2; ++k) {
      programs.push_back(spec.build_spy(pc, k, 2));
      cpu::Interpreter interp(eval::experiment_model_config().exec);
      results.push_back(interp.run(programs.back()));
    }
    std::vector<trace::SpyRun> runs;
    for (int k = 0; k < 2; ++k)
      runs.push_back({&programs[static_cast<std::size_t>(k)],
                      &results[static_cast<std::size_t>(k)].profile});
    return trace::merge_spy_traces(runs, "determinism-probe");
  };
  const trace::MergedTrace a = merge_once();
  const trace::MergedTrace b = merge_once();
  EXPECT_EQ(a.program.instructions(), b.program.instructions());
  EXPECT_EQ(a.program.entry(), b.program.entry());
  EXPECT_EQ(a.program.labels(), b.program.labels());
  EXPECT_EQ(a.program.initial_data(), b.program.initial_data());
  EXPECT_EQ(a.program.relevant_marks(), b.program.relevant_marks());
  EXPECT_EQ(a.profile.first_cycle, b.profile.first_cycle);
  EXPECT_EQ(a.profile.line_addrs, b.profile.line_addrs);
  EXPECT_EQ(a.profile.totals.counts, b.profile.totals.counts);
  EXPECT_EQ(a.profile.cycles, b.profile.cycles);
  EXPECT_EQ(a.profile.retired, b.profile.retired);
}

TEST(TraceMerge, MergedProgramIsValidAndInterleavesSegments) {
  const attacks::MultiSpySpec& spec = attacks::multi_spy_by_name("MultiSpy-FR");
  attacks::PocConfig pc;
  pc.secret = 6;
  const int n = 3;
  std::vector<isa::Program> programs;
  std::vector<cpu::RunResult> results;
  for (int k = 0; k < n; ++k) {
    programs.push_back(spec.build_spy(pc, k, n));
    cpu::Interpreter interp(eval::experiment_model_config().exec);
    results.push_back(interp.run(programs.back()));
  }
  std::vector<trace::SpyRun> runs;
  for (int k = 0; k < n; ++k)
    runs.push_back({&programs[static_cast<std::size_t>(k)],
                    &results[static_cast<std::size_t>(k)].profile});
  const trace::MergedTrace merged = trace::merge_spy_traces(runs, "probe-x3");

  // The concatenated program still satisfies every structural invariant
  // (branch targets in range, operands sensible) after rebasing.
  EXPECT_NO_THROW(merged.program.validate());
  std::size_t total = 0;
  for (const isa::Program& p : programs) total += p.size();
  ASSERT_EQ(merged.program.size(), total);
  ASSERT_EQ(merged.profile.first_cycle.size(), total);
  EXPECT_TRUE(merged.program.contains(merged.program.entry()));
  ASSERT_FALSE(merged.program.labels().empty());
  for (const auto& [name, addr] : merged.program.labels()) {
    EXPECT_EQ(name.rfind("spy", 0), 0u) << name;  // "spyK/..." prefix
    EXPECT_TRUE(merged.program.contains(addr) ||
                addr == merged.program.code_base() +
                            merged.program.size() * isa::kInstrSize)
        << name;  // rebased labels stay inside (or one past) the program
  }

  // Per-segment checks: labels are prefixed, executed instructions land on
  // their spy's round-robin residue, and totals/alarm counters are sums.
  std::size_t base = 0;
  std::uint64_t retired_sum = 0;
  std::uint64_t max_cycles = 0;
  for (int k = 0; k < n; ++k) {
    const trace::ExecutionProfile& local =
        results[static_cast<std::size_t>(k)].profile;
    for (std::size_t i = 0; i < programs[static_cast<std::size_t>(k)].size();
         ++i) {
      const std::uint64_t fc = local.first_cycle[i];
      const std::uint64_t merged_fc = merged.profile.first_cycle[base + i];
      if (fc == 0) {
        EXPECT_EQ(merged_fc, 0u);
      } else {
        ASSERT_NE(merged_fc, 0u);
        EXPECT_EQ((merged_fc - 1) % static_cast<std::uint64_t>(n),
                  static_cast<std::uint64_t>(k));
      }
    }
    retired_sum += local.retired;
    max_cycles = std::max(max_cycles, local.cycles);
    base += programs[static_cast<std::size_t>(k)].size();
  }
  EXPECT_EQ(merged.profile.retired, retired_sum);
  EXPECT_EQ(merged.profile.cycles, max_cycles * static_cast<std::uint64_t>(n));
  // Whole-program sampling series have no meaningful union across address
  // spaces; the merge drops them instead of fabricating one.
  EXPECT_TRUE(merged.profile.samples.empty());
  EXPECT_EQ(merged.profile.sample_interval, 0u);
}

TEST(TraceMerge, RejectsMalformedInput) {
  EXPECT_THROW(trace::merge_spy_traces({}, "empty"), std::invalid_argument);
  const isa::Program program("p");
  trace::ExecutionProfile profile;
  EXPECT_THROW(trace::merge_spy_traces({{nullptr, &profile}}, "null"),
               std::invalid_argument);
  EXPECT_THROW(trace::merge_spy_traces({{&program, nullptr}}, "null"),
               std::invalid_argument);
  // A profile whose vectors do not match its program's size is corrupt.
  isa::Program one("one");
  one.append(isa::Instruction{});
  trace::ExecutionProfile mismatched;
  mismatched.resize(3);
  EXPECT_THROW(trace::merge_spy_traces({{&one, &mismatched}}, "mismatch"),
               std::invalid_argument);
}

}  // namespace
}  // namespace scag
