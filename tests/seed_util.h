// Deterministic seed handling for randomized tests (see
// docs/testing-guide.md "Seeds and replay").
//
// Every randomized test derives its generator seed through test_seed():
//   const std::uint64_t seed = scag::testutil::test_seed(2026);
//   SCOPED_TRACE(scag::testutil::seed_note(seed));
//   Rng rng(seed);
// On failure, gtest prints the SCOPED_TRACE note, which includes the exact
// SCAG_TEST_SEED=<n> incantation that replays the run byte-identically.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace scag::testutil {

/// The seed a randomized test should use: $SCAG_TEST_SEED when set (and
/// parseable), otherwise the test's fixed default. Keeping the default
/// fixed makes CI deterministic; the env override exists to replay a seed
/// printed by a failing run or to explore new ones locally.
inline std::uint64_t test_seed(std::uint64_t default_seed) {
  if (const char* env = std::getenv("SCAG_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint64_t>(v);
  }
  return default_seed;
}

/// One-line replay instruction for SCOPED_TRACE / failure messages.
inline std::string seed_note(std::uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         "; replay with SCAG_TEST_SEED=" + std::to_string(seed);
}

}  // namespace scag::testutil
