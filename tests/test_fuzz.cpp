// Property-based / differential tests over randomly generated programs:
//   - the generator only produces valid, terminating programs;
//   - the interpreter is deterministic;
//   - mutation is an observational no-op: original and mutant end with the
//     same data-register dump and sandbox memory;
//   - the modeling pipeline never crashes on arbitrary (benign) programs;
//   - the parallel batch-scan engine survives degenerate inputs (empty and
//     single-instruction programs, empty CST-BBS targets);
//   - the triage-index scan cascade stays verdict-equivalent to the
//     exhaustive oracle over random repositories and targets, including
//     under fault-injected compiled-kernel degradation (FuzzCascade);
//   - the wavefront SIMD DP kernel is bit-identical to the scalar row
//     kernel over random cost matrices, shapes, windows and abandon
//     thresholds (FuzzSimd).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "cfg/cfg.h"
#include "core/batch_detector.h"
#include "differential_scan.h"
#include "core/dtw_wavefront.h"
#include "core/model.h"
#include "core/serialize.h"
#include "core/store.h"
#include "cpu/interpreter.h"
#include "eval/experiments.h"
#include "eval/scenario_matrix.h"
#include "trace/merge.h"
#include "isa/assembler.h"
#include "isa/random_program.h"
#include "mutation/mutator.h"
#include "seed_util.h"
#include "support/failpoint.h"

namespace scag {
namespace {

using isa::RandomProgramOptions;

constexpr std::uint64_t kDumpWords = 12;  // registers dumped by the fuzzer

std::uint64_t dump_base(const RandomProgramOptions& options) {
  return options.data_base + options.data_words * 8 + 0x1000;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, GeneratedProgramIsValidAndTerminates) {
  Rng rng(GetParam());
  const isa::Program p = isa::random_program(rng);
  EXPECT_NO_THROW(p.validate());
  cpu::ExecOptions opts;
  opts.max_retired = 500'000;
  cpu::Interpreter interp(opts);
  const cpu::RunResult r = interp.run(p);
  EXPECT_EQ(r.profile.exit, trace::ExitReason::kHalted)
      << "seed " << GetParam() << " retired=" << r.profile.retired;
}

TEST_P(FuzzSeeds, InterpreterIsDeterministic) {
  Rng rng(GetParam());
  const isa::Program p = isa::random_program(rng);
  cpu::Interpreter a, b;
  const cpu::RunResult ra = a.run(p);
  const cpu::RunResult rb = b.run(p);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.profile.retired, rb.profile.retired);
  for (std::size_t i = 0; i < isa::kNumRegs; ++i)
    EXPECT_EQ(ra.regs.values[i], rb.regs.values[i]);
  EXPECT_EQ(ra.profile.totals, rb.profile.totals);
}

TEST_P(FuzzSeeds, MutationPreservesObservableBehavior) {
  Rng rng(GetParam());
  RandomProgramOptions options;
  const isa::Program original = isa::random_program(rng, options);

  cpu::Interpreter ref_interp;
  const cpu::RunResult ref = ref_interp.run(original);
  ASSERT_EQ(ref.profile.exit, trace::ExitReason::kHalted);

  for (int variant = 0; variant < 3; ++variant) {
    Rng mut_rng(GetParam() * 31 + static_cast<std::uint64_t>(variant));
    const isa::Program mutant = mutation::mutate(original, mut_rng);
    cpu::Interpreter interp;
    const cpu::RunResult got = interp.run(mutant);
    EXPECT_EQ(got.profile.exit, trace::ExitReason::kHalted)
        << "seed " << GetParam() << " variant " << variant;
    // The register dump the fuzz program writes at exit must match.
    for (std::uint64_t w = 0; w < kDumpWords; ++w) {
      EXPECT_EQ(got.memory.read(dump_base(options) + w * 8),
                ref.memory.read(dump_base(options) + w * 8))
          << "seed " << GetParam() << " variant " << variant << " word " << w;
    }
    // And the sandbox region must match word for word.
    for (std::uint32_t w = 0; w < options.data_words; ++w) {
      ASSERT_EQ(got.memory.read(options.data_base + w * 8),
                ref.memory.read(options.data_base + w * 8))
          << "seed " << GetParam() << " variant " << variant << " word " << w;
    }
  }
}

TEST_P(FuzzSeeds, ModelingPipelineNeverCrashes) {
  Rng rng(GetParam() + 1000);
  const isa::Program p = isa::random_program(rng);
  const core::ModelBuilder builder(eval::experiment_model_config());
  core::ModelArtifacts artifacts;
  EXPECT_NO_THROW(builder.build(p, core::Family::kBenign, &artifacts));
  EXPECT_LE(artifacts.relevant.size(), artifacts.potential.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

// Replay hook (docs/testing-guide.md "Seeds and replay"): exporting
// SCAG_TEST_SEED re-runs every FuzzSeeds case on that exact seed, so a
// seed printed by a failing run (it is part of the test name) can be
// replayed in isolation: SCAG_TEST_SEED=<n> ./test_fuzz
// --gtest_filter='Replay/*'. Without the variable this duplicates seed 1,
// which gtest tolerates (distinct instantiation prefix).
INSTANTIATE_TEST_SUITE_P(Replay, FuzzSeeds,
                         ::testing::Values(scag::testutil::test_seed(1)));

// The replay contract itself: the same seed must drive the whole
// randomized pipeline — program generation, modeling, serialization — to
// byte-identical results in two independent passes. If this breaks, seed
// printing is worthless, so it is tested directly.
TEST(SeedReplay, SameSeedReplaysByteIdentically) {
  const std::uint64_t seed = scag::testutil::test_seed(0x5eed);
  SCOPED_TRACE(scag::testutil::seed_note(seed));
  const auto pass = [&]() -> std::string {
    Rng rng(seed);
    const isa::Program p = isa::random_program(rng);
    const core::ModelBuilder builder;
    core::AttackModel model;
    model.name = "replay";
    model.family = core::Family::kBenign;
    model.sequence = builder.build(p).sequence;
    return core::save_models_to_string({model});
  };
  const std::string first = pass();
  const std::string second = pass();
  EXPECT_EQ(first, second)
      << "same-seed passes diverged; replaying reported seeds would not "
         "reproduce failures";
}

TEST(FuzzBatchScan, DegenerateProgramsScanCleanly) {
  const core::Detector detector = eval::make_scaguard(
      {core::Family::kFlushReload, core::Family::kPrimeProbe});
  core::BatchConfig config;
  config.threads = 2;
  const core::BatchDetector batch(detector, config);

  std::vector<isa::Program> programs;
  programs.push_back(isa::Program{});            // no instructions at all
  programs.push_back(isa::assemble("hlt\n"));
  programs.push_back(isa::assemble("nop\nhlt\n"));
  programs.push_back(isa::assemble("clflush [0x1000]\nhlt\n"));
  programs.push_back(isa::assemble("mov rax, [0x2000]\nrdtscp r8\nhlt\n"));

  std::vector<core::Detection> detections;
  ASSERT_NO_THROW(detections = batch.scan_programs(programs));
  ASSERT_EQ(detections.size(), programs.size());
  for (std::size_t i = 0; i < detections.size(); ++i) {
    EXPECT_FALSE(detections[i].is_attack()) << "program " << i;
    EXPECT_EQ(detections[i].scores.size(), detector.repository_size())
        << "program " << i;
  }

  // Empty CST-BBS targets straight through the comparison stage, with and
  // without pruning.
  const std::vector<core::CstBbs> empties(3);
  for (bool prune : {false, true}) {
    core::BatchConfig pc;
    pc.threads = 2;
    pc.prune = prune;
    const core::BatchDetector engine(detector, pc);
    std::vector<core::Detection> dets;
    ASSERT_NO_THROW(dets = engine.scan_all(empties)) << "prune " << prune;
    ASSERT_EQ(dets.size(), empties.size());
    for (const core::Detection& d : dets)
      EXPECT_FALSE(d.is_attack()) << "prune " << prune;
  }
}

// Feeds mutated repository text to the serializer: every mutation of a
// valid repository must either load cleanly or throw SerializeError --
// never crash, hang, or leak another exception type.
TEST(FuzzSerialize, MutatedRepositoriesNeverCrashTheLoader) {
  const core::Detector detector = eval::make_scaguard(
      {core::Family::kFlushReload, core::Family::kPrimeProbe});
  const std::string valid =
      core::save_models_to_string(detector.repository());
  ASSERT_FALSE(valid.empty());

  const std::string noise_chars =
      "model elem norm sem end 0123456789abcdefgz|.\n\t ";
  Rng rng(0xf002);
  int loaded_ok = 0, rejected = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string text = valid;
    const std::size_t n_mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < n_mutations && !text.empty(); ++m) {
      const std::size_t pos = rng.below(text.size());
      switch (rng.below(5)) {
        case 0:  // flip a byte
          text[pos] = noise_chars[static_cast<std::size_t>(
              rng.below(noise_chars.size()))];
          break;
        case 1:  // delete a byte
          text.erase(pos, 1);
          break;
        case 2:  // insert a byte
          text.insert(pos, 1, noise_chars[static_cast<std::size_t>(
                                  rng.below(noise_chars.size()))]);
          break;
        case 3:  // truncate
          text.resize(pos);
          break;
        case 4: {  // duplicate a whole line
          const std::size_t bol = text.rfind('\n', pos);
          const std::size_t start = bol == std::string::npos ? 0 : bol + 1;
          std::size_t end = text.find('\n', pos);
          if (end == std::string::npos) end = text.size();
          text.insert(start, text.substr(start, end - start) + "\n");
          break;
        }
      }
    }
    try {
      const auto models = core::load_models_from_string(text);
      ++loaded_ok;
      // Anything that loads must also re-save (save validates).
      EXPECT_NO_THROW(core::save_models_to_string(models)) << "iter " << iter;
    } catch (const core::SerializeError&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  // The loader must actually be exercising both paths: most mutants are
  // rejected, but e.g. whitespace-only edits still load.
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(loaded_ok + rejected, 400);
}

// Feeds mutated scag-store-v1 images to the binary reader (core/store.h):
// every mutation of a valid store must either be rejected with StoreError
// at from_bytes or yield a store that attaches and scans without crashing
// — a mutant that slips through structural validation (checksums off) may
// legally change scores, never memory safety. Seed-replayable like every
// FuzzSeeds case (SCAG_TEST_SEED + Replay instantiation).
TEST_P(FuzzSeeds, MutatedStoresNeverCrashTheReader) {
  const core::Detector source = eval::make_scaguard(
      {core::Family::kFlushReload, core::Family::kPrimeProbe});
  static const std::vector<std::uint8_t> base = core::pack_store_bytes(
      source.repository(), source.dtw_config().distance);
  const core::CstBbs probe =
      core::ModelBuilder().build(attacks::fr_iaik()).sequence;

  Rng rng(GetParam() + 0x570123);
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < 120; ++iter) {
    std::vector<std::uint8_t> bytes = base;
    const std::size_t n_mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < n_mutations && !bytes.empty(); ++m) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.below(bytes.size()));
      switch (rng.below(4)) {
        case 0:  // flip bits in one byte
          bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
          break;
        case 1:  // truncate
          bytes.resize(pos);
          break;
        case 2:  // insert a byte (shifts every section after it)
          bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                       static_cast<std::uint8_t>(rng.below(256)));
          break;
        case 3:  // overwrite an aligned u64 — offsets, counts, checksums
          if (bytes.size() >= 8) {
            const std::uint64_t v = rng.next();
            const std::size_t at = (pos / 8) * 8;
            if (at + 8 <= bytes.size()) std::memcpy(bytes.data() + at, &v, 8);
          }
          break;
      }
    }
    core::StoreOptions opts;
    opts.verify_checksums = rng.below(4) == 0;
    try {
      const auto store = core::ModelStore::from_bytes(std::move(bytes), opts);
      core::Detector twin(core::ModelConfig{}, source.dtw_config(),
                          source.threshold());
      twin.attach_store(store);
      const core::Detection det = twin.scan(probe);
      EXPECT_EQ(det.scores.size(), store->num_models());
      ++accepted;
    } catch (const core::StoreError&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  EXPECT_GT(rejected, 0) << "mutations never tripped the validator";
  EXPECT_EQ(accepted + rejected, 120);
}

// Differential fuzz for the scan cascade (core/scan_index.h): random
// repositories (mutated PoC variants, families cycling) scanned by random
// targets must stay verdict-equivalent to the exhaustive string-kernel
// oracle on every cascaded path (tests/differential_scan.h). Replay a
// failing run with SCAG_TEST_SEED=<printed seed>.
TEST(FuzzCascade, RandomRepositoriesStayVerdictEquivalent) {
  const std::uint64_t seed = scag::testutil::test_seed(0xca5cade);
  SCOPED_TRACE(scag::testutil::seed_note(seed));
  Rng rng(seed);
  const core::ModelBuilder builder;
  const attacks::PocConfig poc;
  const std::vector<attacks::PocSpec>& pocs = attacks::all_pocs();

  for (int round = 0; round < 3; ++round) {
    // Repository: 3-6 mutated variants of randomly drawn PoCs. Names are
    // forced unique so the harness can match entries across orderings.
    const double thresholds[] = {0.2, 0.45, 0.7};
    core::Detector detector(core::ModelConfig{},
                            core::calibrated_dtw_config(),
                            thresholds[rng.below(3)]);
    const std::size_t repo_size = 3 + rng.below(4);
    for (std::size_t j = 0; j < repo_size; ++j) {
      const attacks::PocSpec& spec =
          pocs[static_cast<std::size_t>(rng.below(pocs.size()))];
      Rng mut_rng = rng.split();
      core::AttackModel model =
          builder.build(mutation::mutate(spec.build(poc), mut_rng),
                        spec.family);
      model.name = "fuzz-" + std::to_string(round) + "-" + std::to_string(j);
      detector.enroll(std::move(model));
    }

    // Targets: random programs, a mutated PoC, an enrolled-family PoC,
    // and the empty sequence.
    std::vector<core::CstBbs> targets;
    for (int t = 0; t < 2; ++t) {
      Rng gen = rng.split();
      RandomProgramOptions options;
      options.statements = 15 + 10 * t;
      targets.push_back(
          builder.build(isa::random_program(gen, options)).sequence);
    }
    {
      Rng mut_rng = rng.split();
      const attacks::PocSpec& spec =
          pocs[static_cast<std::size_t>(rng.below(pocs.size()))];
      targets.push_back(
          builder.build(mutation::mutate(spec.build(poc), mut_rng)).sequence);
      targets.push_back(builder.build(spec.build(poc)).sequence);
    }
    targets.push_back(core::CstBbs{});

    scag::testutil::run_differential_matrix(
        detector, targets, "round " + std::to_string(round), {1, 2});
  }
}

// Same property while the compiled target compilation fails
// probabilistically: the cascade degrades per call to the bit-identical
// string kernels, so equivalence must survive any interleaving of
// degraded and fast-path scans.
TEST(FuzzCascade, StaysEquivalentUnderProbabilisticDegradation) {
  if (!support::fp::compiled_in())
    GTEST_SKIP() << "built with SCAG_FAILPOINTS_OFF";
  const std::uint64_t seed = scag::testutil::test_seed(0xdeca1);
  SCOPED_TRACE(scag::testutil::seed_note(seed));
  Rng rng(seed);
  const core::ModelBuilder builder;
  const attacks::PocConfig poc;

  core::Detector detector(core::ModelConfig{}, core::calibrated_dtw_config(),
                          0.45);
  std::size_t j = 0;
  for (const char* name : {"FR-IAIK", "PP-IAIK", "Spectre-FR-Ideal"}) {
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    Rng mut_rng = rng.split();
    core::AttackModel model = builder.build(
        mutation::mutate(spec.build(poc), mut_rng), spec.family);
    model.name = "degrade-" + std::to_string(j++);
    detector.enroll(std::move(model));
  }
  std::vector<core::CstBbs> targets;
  for (int t = 0; t < 3; ++t) {
    Rng gen = rng.split();
    targets.push_back(builder.build(isa::random_program(gen)).sequence);
  }
  targets.push_back(
      builder.build(attacks::poc_by_name("FR-IAIK").build(poc)).sequence);

  support::fp::disarm_all();
  support::fp::arm_from_string("compiled.compile_target=throw%0.5:" +
                               std::to_string(seed & 0xffff));
  scag::testutil::run_differential_matrix(detector, targets,
                                          "degraded-50pct", {1, 2});
  support::fp::disarm_all();
}

// The wavefront SIMD kernel (core/dtw_wavefront.h) against the scalar row
// kernel, directly at the DP level: random shapes (degenerate ones
// included), random cost matrices, random windows (narrower than |n-m|
// too — the kernels must widen identically), both normalizations, and
// random early-abandon thresholds spanning never/sometimes/always. The
// results must match bit for bit: distance, path_length (tie-breaks
// included), and the abandoned flag. Replay a failure with
// SCAG_TEST_SEED=<seed> (seed_util.h).
TEST(FuzzSimd, WavefrontMatchesScalarBitExactly) {
  const std::uint64_t seed = scag::testutil::test_seed(0x51'3d);
  SCOPED_TRACE(scag::testutil::seed_note(seed));
  Rng rng(seed);

  for (int round = 0; round < 200; ++round) {
    const std::size_t n = rng.below(41);
    const std::size_t m = rng.chance(0.1) ? rng.below(2) : rng.below(41);
    std::vector<double> costs(std::max<std::size_t>(1, n * m));
    for (double& c : costs) c = rng.uniform_real(0.0, 2.0);
    const auto cost = [&](std::size_t i, std::size_t j) {
      return costs[i * m + j];
    };

    core::DtwConfig config;
    config.normalization = rng.chance(0.5)
                               ? core::DtwNormalization::kPathAveraged
                               : core::DtwNormalization::kAccumulated;
    config.window = rng.below(12);  // 0 = unconstrained; may be < |n-m|
    double abandon = std::numeric_limits<double>::infinity();
    if (rng.chance(0.6))
      abandon = rng.uniform_real(0.0, 1.5 * static_cast<double>(n + m));

    const core::DtwResult scalar = core::dtw(n, m, cost, config, abandon);
    const core::DtwResult wave =
        core::dtw_wavefront(n, m, cost, config, abandon);
    const std::string what = "round " + std::to_string(round) + " n=" +
                             std::to_string(n) + " m=" + std::to_string(m) +
                             " w=" + std::to_string(config.window) +
                             " abandon=" + std::to_string(abandon);
    EXPECT_EQ(scag::testutil::score_bits(scalar.distance),
              scag::testutil::score_bits(wave.distance))
        << what << ": distance " << scalar.distance << " vs "
        << wave.distance;
    EXPECT_EQ(scalar.path_length, wave.path_length) << what;
    EXPECT_EQ(scalar.abandoned, wave.abandoned) << what;
  }
}

// Seed-replayable fuzz over the multi-spy pipeline: a random cooperative
// attack (spec, spy count, secret, defense) is executed and merged twice;
// the merged programs, profiles, and the detector's verdict must be
// bit-identical — the scenario matrix's determinism contract, explored
// beyond the fixed grid. Replay with SCAG_TEST_SEED=<printed seed>.
TEST(FuzzMultiSpy, RandomCooperativeRunsMergeBitIdentically) {
  const std::uint64_t seed = scag::testutil::test_seed(0x5be5);
  SCOPED_TRACE(scag::testutil::seed_note(seed));
  Rng rng(seed);
  const core::Detector detector = eval::make_scenario_detector();

  for (int round = 0; round < 4; ++round) {
    const auto& specs = attacks::all_multi_spy_specs();
    const attacks::MultiSpySpec& spec = specs[rng.below(specs.size())];
    const int spies = static_cast<int>(rng.uniform(2, 4));
    attacks::PocConfig pc;
    pc.secret = rng.below(attacks::Layout::kNumSlots);
    const cache::DefensePolicy defense = rng.chance(0.5)
                                             ? cache::DefensePolicy::kSharp
                                             : cache::DefensePolicy::kNone;
    const std::string what = "round " + std::to_string(round) + " " +
                             spec.name + " x" + std::to_string(spies) +
                             " secret=" + std::to_string(pc.secret);

    auto run_once = [&]() {
      core::ModelConfig cfg = eval::experiment_model_config();
      cfg.exec.cache_config.defense = defense;
      std::vector<isa::Program> programs;
      std::vector<cpu::RunResult> results;
      for (int k = 0; k < spies; ++k) {
        programs.push_back(spec.build_spy(pc, k, spies));
        cpu::Interpreter interp(cfg.exec);
        results.push_back(interp.run(programs.back()));
      }
      std::vector<trace::SpyRun> runs;
      for (std::size_t k = 0; k < programs.size(); ++k)
        runs.push_back({&programs[k], &results[k].profile});
      return trace::merge_spy_traces(runs, spec.name + "-fuzz");
    };
    const trace::MergedTrace a = run_once();
    const trace::MergedTrace b = run_once();
    ASSERT_EQ(a.program.instructions(), b.program.instructions()) << what;
    ASSERT_EQ(a.profile.first_cycle, b.profile.first_cycle) << what;
    ASSERT_EQ(a.profile.line_addrs, b.profile.line_addrs) << what;
    ASSERT_EQ(a.profile.totals.counts, b.profile.totals.counts) << what;
    ASSERT_EQ(a.profile.sharp_alarms_attacker, b.profile.sharp_alarms_attacker)
        << what;

    const core::ModelBuilder builder{eval::experiment_model_config()};
    const core::Detection da = detector.scan(
        builder
            .build_from_profile(cfg::Cfg::build(a.program), a.profile,
                                spec.family)
            .sequence);
    const core::Detection db = detector.scan(
        builder
            .build_from_profile(cfg::Cfg::build(b.program), b.profile,
                                spec.family)
            .sequence);
    EXPECT_EQ(da.verdict, db.verdict) << what;
    EXPECT_EQ(da.verdict, spec.family) << what;
    EXPECT_EQ(scag::testutil::score_bits(da.best_score),
              scag::testutil::score_bits(db.best_score))
        << what;
  }
}

TEST(FuzzGenerator, ProgramsDifferAcrossSeeds) {
  Rng a(1), b(2);
  const isa::Program p1 = isa::random_program(a);
  const isa::Program p2 = isa::random_program(b);
  bool differ = p1.size() != p2.size();
  for (std::size_t i = 0; !differ && i < p1.size(); ++i)
    differ = !(p1.at(i) == p2.at(i));
  EXPECT_TRUE(differ);
}

TEST(FuzzGenerator, RespectsStatementBudget) {
  Rng rng(7);
  RandomProgramOptions small;
  small.statements = 5;
  small.subroutines = 0;
  RandomProgramOptions big;
  big.statements = 120;
  big.subroutines = 0;
  const isa::Program ps = isa::random_program(rng, small);
  const isa::Program pb = isa::random_program(rng, big);
  EXPECT_LT(ps.size(), pb.size());
}

}  // namespace
}  // namespace scag
