// End-to-end tests for the attack PoCs: every PoC must genuinely recover
// the planted secret through the cache timing channel, for every secret
// value, and must degrade gracefully (not crash) in odd configurations.
#include <gtest/gtest.h>

#include "attacks/registry.h"
#include "cpu/interpreter.h"

namespace scag {
namespace {

using attacks::Layout;
using attacks::PocConfig;
using attacks::PocSpec;

std::uint64_t run_and_recover(const isa::Program& poc, const Layout& layout) {
  cpu::Interpreter interp;
  const cpu::RunResult result = interp.run(poc);
  EXPECT_EQ(result.profile.exit, trace::ExitReason::kHalted)
      << poc.name() << " did not halt cleanly";
  return result.memory.read(layout.recovered_addr);
}

// ---- Every PoC x every secret value -------------------------------------

struct PocSecretCase {
  std::string poc_name;
  std::uint64_t secret;
};

class PocRecoversSecret
    : public ::testing::TestWithParam<PocSecretCase> {};

TEST_P(PocRecoversSecret, RecoversPlantedSecret) {
  const PocSecretCase& param = GetParam();
  PocConfig config;
  config.secret = param.secret;
  const PocSpec& spec = attacks::poc_by_name(param.poc_name);
  const isa::Program poc = spec.build(config);
  EXPECT_EQ(run_and_recover(poc, config.layout), param.secret)
      << param.poc_name << " failed to recover secret " << param.secret;
}

std::vector<PocSecretCase> all_poc_secret_cases() {
  std::vector<PocSecretCase> cases;
  for (const PocSpec& spec : attacks::all_pocs()) {
    // Spectre PoCs use slot 0 for training, so their secret domain is 1..15.
    const std::uint64_t lo = 1;
    for (std::uint64_t s = lo; s < Layout::kNumSlots; s += 2)
      cases.push_back({spec.name, s});
  }
  return cases;
}

std::string poc_case_name(
    const ::testing::TestParamInfo<PocSecretCase>& info) {
  std::string n = info.param.poc_name;
  for (char& c : n)
    if (c == '-' || c == '+') c = '_';
  return n + "_secret" + std::to_string(info.param.secret);
}

INSTANTIATE_TEST_SUITE_P(AllPocs, PocRecoversSecret,
                         ::testing::ValuesIn(all_poc_secret_cases()),
                         poc_case_name);

// ---- Structural properties ------------------------------------------------

TEST(PocRegistry, HasElevenPocs) {
  EXPECT_EQ(attacks::all_pocs().size(), 11u);
}

TEST(PocRegistry, FamilyPartition) {
  EXPECT_EQ(attacks::pocs_of_family(core::Family::kFlushReload).size(), 5u);
  EXPECT_EQ(attacks::pocs_of_family(core::Family::kPrimeProbe).size(), 2u);
  EXPECT_EQ(attacks::pocs_of_family(core::Family::kSpectreFR).size(), 3u);
  EXPECT_EQ(attacks::pocs_of_family(core::Family::kSpectrePP).size(), 1u);
}

TEST(PocRegistry, UnknownNameThrows) {
  EXPECT_THROW(attacks::poc_by_name("NoSuchAttack"), std::out_of_range);
}

TEST(PocRegistry, AllProgramsValidate) {
  for (const PocSpec& spec : attacks::all_pocs()) {
    const isa::Program p = spec.build(PocConfig{});
    EXPECT_NO_THROW(p.validate()) << spec.name;
    EXPECT_FALSE(p.relevant_marks().empty())
        << spec.name << " has no ground-truth marks";
  }
}

TEST(PocBehavior, MoreRoundsStillRecover) {
  PocConfig config;
  config.secret = 11;
  config.rounds = 8;
  for (const PocSpec& spec : attacks::all_pocs()) {
    const isa::Program poc = spec.build(config);
    EXPECT_EQ(run_and_recover(poc, config.layout), config.secret)
        << spec.name;
  }
}

TEST(PocBehavior, SpectreNeedsSpeculation) {
  // With transient execution disabled the Spectre PoCs must NOT leak:
  // the histogram over slots 1..15 stays empty and argmax returns slot 1.
  PocConfig config;
  config.secret = 9;
  cpu::ExecOptions opts;
  opts.speculation = false;
  for (const char* name :
       {"Spectre-FR-Ideal", "Spectre-FR-Good", "Spectre-FR-Interleaved"}) {
    const isa::Program poc = attacks::poc_by_name(name).build(config);
    cpu::Interpreter interp(opts);
    const cpu::RunResult result = interp.run(poc);
    EXPECT_NE(result.memory.read(config.layout.recovered_addr),
              config.secret)
        << name << " leaked without speculation";
  }
}

TEST(PocBehavior, ClassicAttacksWorkWithoutSpeculation) {
  PocConfig config;
  config.secret = 5;
  cpu::ExecOptions opts;
  opts.speculation = false;
  for (const char* name :
       {"FR-IAIK", "FR-Mastik", "FR-Nepoche", "FF-IAIK", "ER-IAIK",
        "PP-IAIK", "PP-Jzhang"}) {
    const isa::Program poc = attacks::poc_by_name(name).build(config);
    cpu::Interpreter interp(opts);
    const cpu::RunResult result = interp.run(poc);
    EXPECT_EQ(result.memory.read(config.layout.recovered_addr),
              config.secret)
        << name;
  }
}

// ---- Extension: Evict+Time (not in the Table II registry) -----------------

TEST(EvictTime, RecoversSecretAcrossValues) {
  for (std::uint64_t secret = 1; secret < Layout::kNumSlots; secret += 3) {
    PocConfig config;
    config.secret = secret;
    EXPECT_EQ(run_and_recover(attacks::evict_time(config), config.layout),
              secret);
  }
}

TEST(EvictTime, NotPartOfTheTableTwoRegistry) {
  EXPECT_THROW(attacks::poc_by_name("Evict+Time"), std::out_of_range);
}

}  // namespace
}  // namespace scag
