// The golden end-to-end regression corpus, shared by the fixture
// generator (tools/make_golden.cpp) and the drift test
// (tests/test_golden.cpp). Both sides must build the exact same
// repository and targets, so the definition lives here once.
//
// The corpus is deliberately tiny but end-to-end: a repository of one PoC
// per attack family, and ten scan targets spanning enrolled attacks,
// unseen-variant attacks, an unseen *family*, and seeded benign programs.
// Verdicts and best scores over this corpus are stable across platforms
// (every float is compared as its IEEE-754 bit pattern), so any drift in
// the modeling pipeline, the DTW kernels, or the serializer shows up as a
// one-line diff here before it shows up in the paper's tables.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/detector.h"
#include "core/explain.h"
#include "support/rng.h"

namespace scag::golden {

inline constexpr const char* kExpectedHeader = "scaguard-golden v1";
inline constexpr const char* kExplainHeader = "scaguard-golden-explain v1";
inline constexpr std::uint64_t kBenignSeed = 7;

/// Exact round-trippable text form of a double (IEEE-754 bits in hex).
inline std::string score_bits(double v) {
  static const char* hex = "0123456789abcdef";
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, bits >>= 4) out[i] = hex[bits & 0xf];
  return out;
}

inline double bits_score(const std::string& s) {
  std::uint64_t bits = 0;
  for (char c : s) {
    bits <<= 4;
    if (c >= '0' && c <= '9') bits |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return -1.0;  // malformed; callers compare bit strings anyway
  }
  return std::bit_cast<double>(bits);
}

/// The canonical detector: one representative PoC per attack family,
/// paper-calibrated DTW config and threshold.
inline core::Detector make_detector() {
  core::Detector detector(core::ModelConfig{}, core::calibrated_dtw_config(),
                          0.45);
  for (const char* name :
       {"FR-IAIK", "PP-IAIK", "Spectre-FR-Ideal", "Spectre-PP-Trippel"}) {
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    detector.enroll(spec.build(attacks::PocConfig{}), spec.family);
  }
  return detector;
}

struct GoldenTarget {
  std::string name;
  isa::Program program;
};

/// The ten scan targets: four enrolled PoCs, three unseen attack
/// variants, the unseen Evict+Time family, and two seeded benign
/// programs (first two registry templates, Rng stream from kBenignSeed).
inline std::vector<GoldenTarget> make_targets() {
  std::vector<GoldenTarget> targets;
  for (const char* name :
       {"FR-IAIK", "PP-IAIK", "Spectre-FR-Ideal", "Spectre-PP-Trippel",
        "FR-Mastik", "PP-Jzhang", "FF-IAIK"}) {
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    targets.push_back({spec.name, spec.build(attacks::PocConfig{})});
  }
  targets.push_back({"Evict-Time", attacks::evict_time()});
  Rng rng(kBenignSeed);
  const std::vector<benign::BenignSpec>& benign =
      benign::all_benign_templates();
  for (std::size_t i = 0; i < 2 && i < benign.size(); ++i) {
    Rng gen = rng.split();
    targets.push_back({"Benign/" + benign[i].name, benign[i].build(gen)});
  }
  return targets;
}

/// One explain-fixture block per target (golden_explain.txt): every
/// model's score/distance/accumulated-cost bit patterns, the best model's
/// full warping path with each pair's D_IS/D_CSP decomposition, and the
/// verdict rationale. Single source for the generator
/// (tools/make_golden.cpp) and the drift test (tests/test_golden.cpp), so
/// the two sides can never disagree about the rendering.
inline std::string explain_fixture_block(const core::Detector& detector,
                                         const GoldenTarget& target) {
  const core::ScanReport report = detector.explain(
      detector.builder().build(target.program).sequence, target.name,
      core::ExplainConfig{});
  auto idx = [](std::size_t i) {
    return i == core::kGapIndex ? std::string("-") : std::to_string(i);
  };
  std::string out = "target " + target.name + " " +
                    std::string(core::family_abbrev(report.verdict)) + " " +
                    core::ieee_hex_bits(report.best_score) + "\n";
  for (const core::ModelExplanation& m : report.models) {
    out += "  model " + m.model_name + " score " +
           core::ieee_hex_bits(m.score) + " distance " +
           core::ieee_hex_bits(m.distance) + " acc " +
           core::ieee_hex_bits(m.accumulated_cost) + " path " +
           std::to_string(m.path_length) + "\n";
    // Cascade attribution: pins the kim/envelope bound values and the
    // triage index's visit rank, so any drift in the scan cascade
    // (core/scan_index.h) shows up here as a one-line diff.
    out += "  prune " + m.model_name + " kim " +
           core::ieee_hex_bits(m.prune.kim_bound) + " lb " +
           core::ieee_hex_bits(m.prune.lower_bound) + " ub " +
           core::ieee_hex_bits(m.prune.score_upper_bound) + " rank " +
           std::to_string(m.prune.triage_rank) + " skips " +
           (m.prune.kim_prunes ? "kim" : m.prune.lb_prunes ? "lb" : "none") +
           " band " + std::to_string(m.prune.band_width) + "\n";
  }
  if (!report.models.empty()) {
    for (const core::AlignedPair& p : report.models.front().path)
      out += "  pair " + idx(p.target_index) + " " + idx(p.model_index) +
             " bb " + std::to_string(p.target_block) + " " +
             std::to_string(p.model_block) + " cost " +
             core::ieee_hex_bits(p.cost) + " is " +
             core::ieee_hex_bits(p.is_distance) + " csp " +
             core::ieee_hex_bits(p.csp_distance) + "\n";
  }
  for (const core::RationaleEntry& r : report.rationale)
    out += "  top " + r.model_name + " " + idx(r.pair.target_index) + " " +
           idx(r.pair.model_index) + " cost " +
           core::ieee_hex_bits(r.pair.cost) + " share " +
           core::ieee_hex_bits(r.share) + "\n";
  return out;
}

}  // namespace scag::golden
