// Reusable differential harness for the sublinear scan paths.
//
// The triage index + lower-bound cascade (core/scan_index.h) promises a
// STRONGER contract than BatchConfig::prune: verdict, best_score, AND the
// winning model are bit-identical to the exhaustive scan for EVERY target
// — benign ones included — because the cascade's cutoff is the best exact
// score only, never the threshold. This header turns that promise into a
// single reusable check:
//
//   - exhaustive_oracle(): the ground truth, computed directly on the
//     string kernels (core/dtw.h similarity + Detector::finalize), with no
//     detector flags involved — it cannot accidentally share a fast path
//     with the candidate under test.
//   - expect_detection_equivalent(): EXPECT_EQ-level comparison of one
//     candidate Detection against the oracle. Doubles are compared as
//     IEEE-754 bit patterns, never with tolerances. Sub-best entries are
//     checked too: exact entries must match the oracle bit for bit, and
//     pruned entries must record an upper bound that is >= the true score
//     and strictly below the scan's best (the admissibility invariant).
//   - run_differential_matrix(): sweeps one target set through every
//     cascaded path — serial Detector with use_index() on, both kernels
//     (use_compiled on/off), both DP kernels (use_simd off = scalar row
//     loop, on = wavefront SIMD), and BatchDetector with
//     BatchConfig::index at each requested thread count — asserting
//     equivalence per target. The oracle always runs the scalar string
//     kernel (dtw_config() never selects the wavefront), so the SIMD
//     kernel's bit-identity is proven against an independent scalar
//     ground truth in every sweep.
//
// Used by tests/test_scan_index.cpp (fixed corpora, thresholds, hostile
// and degraded inputs) and tests/test_fuzz.cpp (seed-replayable random
// repositories and targets).
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_detector.h"
#include "core/detector.h"
#include "core/dtw.h"
#include "core/store.h"
#include "support/events.h"

namespace scag::testutil {

/// RAII ring-only session of the global event journal for the events axis
/// of the differential matrices: no sink file, events accumulate in the
/// ring (drops are fine — the journal is passive) and are discarded on
/// destruction. Compiles to a no-op under -DSCAG_METRICS_OFF, which is
/// itself part of the contract: call sites build and verdicts match in
/// both modes.
class ScopedEventJournal {
 public:
  ScopedEventJournal() {
    support::events::JournalConfig config;
    config.ring_capacity = 1u << 12;
    support::events::EventJournal::global().start(config);
  }
  ~ScopedEventJournal() {
    std::vector<support::events::Event> drained;
    support::events::EventJournal::global().drain(drained);
    support::events::EventJournal::global().stop();
  }
  ScopedEventJournal(const ScopedEventJournal&) = delete;
  ScopedEventJournal& operator=(const ScopedEventJournal&) = delete;
};

/// IEEE-754 bit pattern of a double; the only way two scores are ever
/// compared in this harness.
inline std::uint64_t score_bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

/// Ground-truth Detection: exhaustive string-kernel similarity against
/// every repository model, reduced by the shared Detector::finalize. No
/// compiled path, no index, no pruning — nothing to share a bug with.
inline core::Detection exhaustive_oracle(const core::Detector& detector,
                                         const core::CstBbs& target) {
  std::vector<core::ModelScore> scores;
  scores.reserve(detector.repository_size());
  for (const core::AttackModel& model : detector.repository()) {
    core::ModelScore s;
    s.model_name = model.name;
    s.family = model.family;
    s.score = core::similarity(target, model.sequence, detector.dtw_config());
    scores.push_back(std::move(s));
  }
  return core::Detector::finalize(std::move(scores), detector.threshold());
}

/// Asserts `got` (produced by a cascaded path) is verdict-equivalent to
/// `oracle` (produced by exhaustive_oracle over the same detector/target):
/// same verdict, bit-identical best_score, same winning model by name AND
/// family, and per-model entries that are either bit-exact (unpruned) or
/// admissible upper bounds strictly below the best (pruned).
inline void expect_detection_equivalent(const core::Detection& oracle,
                                        const core::Detection& got,
                                        const std::string& label) {
  EXPECT_EQ(oracle.verdict, got.verdict) << label;
  EXPECT_EQ(score_bits(oracle.best_score), score_bits(got.best_score))
      << label << ": best_score " << oracle.best_score << " vs "
      << got.best_score;
  ASSERT_EQ(oracle.scores.size(), got.scores.size()) << label;
  if (!oracle.scores.empty()) {
    EXPECT_EQ(oracle.scores.front().model_name, got.scores.front().model_name)
        << label << ": winning model";
    EXPECT_EQ(oracle.scores.front().family, got.scores.front().family)
        << label << ": winning family";
  }
  // Sub-best audit. Both score lists cover the same repository, so match
  // entries by model name (unique per enrollment in every corpus here).
  for (const core::ModelScore& s : got.scores) {
    double truth = -1.0;
    for (const core::ModelScore& o : oracle.scores)
      if (o.model_name == s.model_name) truth = o.score;
    ASSERT_GE(truth, 0.0) << label << ": model " << s.model_name
                          << " missing from oracle";
    if (!s.pruned) {
      EXPECT_EQ(score_bits(truth), score_bits(s.score))
          << label << ": exact entry " << s.model_name;
    } else {
      // An admissible bound: at least the true score (it is an upper
      // bound), strictly below the scan's best (or it would have been
      // promoted to an exact recompute).
      EXPECT_GE(s.score, truth) << label << ": pruned bound " << s.model_name;
      EXPECT_LT(s.score, got.best_score)
          << label << ": pruned bound " << s.model_name
          << " not below the best";
    }
  }
}

/// Sweeps `targets` through every cascaded scan path and asserts each one
/// is verdict-equivalent to the exhaustive oracle:
///   - serial Detector, use_index() on, use_compiled() off and on,
///     use_simd() off (scalar row DP) and on (wavefront SIMD DP);
///   - BatchDetector with BatchConfig::index, all four kernel
///     combinations, at every thread count in `thread_counts`.
/// Restores the detector's flags before returning. `label` prefixes every
/// failure message (put the corpus/seed there).
inline void run_differential_matrix(
    core::Detector& detector, const std::vector<core::CstBbs>& targets,
    const std::string& label,
    const std::vector<std::size_t>& thread_counts = {1, 2, 8}) {
  const bool saved_compiled = detector.use_compiled();
  const bool saved_index = detector.use_index();
  const bool saved_simd = detector.use_simd();

  std::vector<core::Detection> oracles;
  oracles.reserve(targets.size());
  for (const core::CstBbs& t : targets)
    oracles.push_back(exhaustive_oracle(detector, t));

  detector.set_use_index(true);
  // The events axis: the journal is passive, so every path must produce
  // bit-identical Detections with the journal off and recording into a
  // live ring (scan-start/prune-stage/cascade-cutoff/verdict events from
  // 1, 2, and 8 worker threads).
  for (bool journal : {false, true}) {
    std::optional<ScopedEventJournal> events_session;
    if (journal) events_session.emplace();
    const std::string jlabel =
        label + (journal ? "/events-on" : "/events-off");
    for (bool compiled : {false, true}) {
      detector.set_use_compiled(compiled);
      for (bool simd : {false, true}) {
        detector.set_use_simd(simd);
        const std::string serial_label = jlabel + "/serial" +
                                         (compiled ? "+compiled" : "+string") +
                                         (simd ? "+simd" : "+scalar");
        for (std::size_t i = 0; i < targets.size(); ++i)
          expect_detection_equivalent(
              oracles[i], detector.scan(targets[i]),
              serial_label + "/target" + std::to_string(i));

        for (std::size_t threads : thread_counts) {
          core::BatchConfig config;
          config.threads = threads;
          config.index = true;
          const core::BatchDetector batch(detector, config);
          const std::vector<core::Detection> got = batch.scan_all(targets);
          ASSERT_EQ(got.size(), targets.size());
          const std::string batch_label = serial_label + "/batch-t" +
                                          std::to_string(threads) + "/target";
          for (std::size_t i = 0; i < targets.size(); ++i)
            expect_detection_equivalent(oracles[i], got[i],
                                        batch_label + std::to_string(i));
        }
      }
    }
  }

  detector.set_use_compiled(saved_compiled);
  detector.set_use_index(saved_index);
  detector.set_use_simd(saved_simd);
}

/// A store-backed twin of `detector`: its repository packed to
/// scag-store-v1 bytes, re-opened (with checksum verification), and
/// attached to a fresh Detector with the same configs and threshold. The
/// twin scans straight out of the store image; the zero-copy contract
/// says its Detections are bit-identical to the original's.
inline core::Detector store_backed_clone(const core::Detector& detector) {
  core::StoreOptions opts;
  opts.verify_checksums = true;
  std::shared_ptr<const core::ModelStore> store = core::ModelStore::from_bytes(
      core::pack_store_bytes(detector.repository(),
                             detector.dtw_config().distance),
      opts);
  core::Detector twin(detector.builder().config(), detector.dtw_config(),
                      detector.threshold());
  twin.attach_store(std::move(store));
  return twin;
}

/// The store-backed differential axis: oracle Detections come from the
/// text-enrolled `detector` (exhaustive string kernel), candidates from a
/// store-backed twin across serial + batch paths, both kernels, scalar
/// and SIMD DPs, index off and on, at every thread count. One call proves
/// the tentpole invariant — mmap-backed scans bit-identical to
/// text-loaded scans — for one corpus.
inline void run_store_differential_matrix(
    const core::Detector& detector, const std::vector<core::CstBbs>& targets,
    const std::string& label,
    const std::vector<std::size_t>& thread_counts = {1, 2, 8}) {
  std::vector<core::Detection> oracles;
  oracles.reserve(targets.size());
  for (const core::CstBbs& t : targets)
    oracles.push_back(exhaustive_oracle(detector, t));

  core::Detector twin = store_backed_clone(detector);
  for (bool journal : {false, true}) {
    std::optional<ScopedEventJournal> events_session;
    if (journal) events_session.emplace();
    const std::string jlabel =
        label + (journal ? "/events-on" : "/events-off");
    for (bool use_index : {false, true}) {
      twin.set_use_index(use_index);
      for (bool compiled : {false, true}) {
        twin.set_use_compiled(compiled);
        for (bool simd : {false, true}) {
          twin.set_use_simd(simd);
          const std::string serial_label =
              jlabel + "/store-serial" +
              (use_index ? "+index" : "+exhaustive") +
              (compiled ? "+compiled" : "+string") +
              (simd ? "+simd" : "+scalar");
          for (std::size_t i = 0; i < targets.size(); ++i)
            expect_detection_equivalent(
                oracles[i], twin.scan(targets[i]),
                serial_label + "/target" + std::to_string(i));

          for (std::size_t threads : thread_counts) {
            core::BatchConfig config;
            config.threads = threads;
            config.index = use_index;
            const core::BatchDetector batch(twin, config);
            const std::vector<core::Detection> got = batch.scan_all(targets);
            ASSERT_EQ(got.size(), targets.size());
            const std::string batch_label = serial_label + "/batch-t" +
                                            std::to_string(threads) +
                                            "/target";
            for (std::size_t i = 0; i < targets.size(); ++i)
              expect_detection_equivalent(oracles[i], got[i],
                                          batch_label + std::to_string(i));
          }
        }
      }
    }
  }
}

}  // namespace scag::testutil
