// End-to-end integration tests: the full SCAGuard pipeline from program to
// verdict, cross-module invariants, and robustness/failure-injection cases.
#include <gtest/gtest.h>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "cfg/cfg.h"
#include "core/detector.h"
#include "cpu/interpreter.h"
#include "eval/experiments.h"
#include "isa/assembler.h"
#include "mutation/mutator.h"

namespace scag {
namespace {

using attacks::PocConfig;
using core::Family;

core::Detector full_detector() {
  return eval::make_scaguard({Family::kFlushReload, Family::kPrimeProbe,
                              Family::kSpectreFR, Family::kSpectrePP});
}

// ---- Detection end-to-end ------------------------------------------------------

TEST(EndToEnd, EveryPocIsDetectedAsItsOwnFamily) {
  const core::Detector d = full_detector();
  for (const attacks::PocSpec& spec : attacks::all_pocs()) {
    const core::Detection det = d.scan(spec.build(PocConfig{}));
    EXPECT_TRUE(det.is_attack()) << spec.name;
    EXPECT_EQ(det.verdict, spec.family) << spec.name;
  }
}

TEST(EndToEnd, MutantsOfUnseenImplementationsDetected) {
  // The repository holds one PoC per family; mutants of the OTHER
  // implementations must still be recognized (the E1 task's core).
  const core::Detector d = full_detector();
  Rng rng(2024);
  int detected = 0, total = 0;
  for (const char* name : {"FR-Mastik", "FR-Nepoche", "FF-IAIK", "ER-IAIK",
                           "PP-Jzhang", "Spectre-FR-Good"}) {
    for (int k = 0; k < 4; ++k) {
      PocConfig config;
      config.secret = 1 + rng.below(15);
      Rng mut_rng = rng.split();
      const isa::Program mutant =
          mutation::mutate(attacks::poc_by_name(name).build(config), mut_rng);
      detected += d.scan(mutant).is_attack();
      ++total;
    }
  }
  EXPECT_GE(detected, total - 2);
}

TEST(EndToEnd, BenignFalsePositivesStayInThePaperRegime) {
  // The paper's precision is ~96.6%, i.e. a small benign false-positive
  // mass exists. Our corpus reproduces that: quicksort's partition/swap
  // phases share cache sets across blocks and occasionally score just over
  // threshold. Require the FP rate to stay in the single digits.
  const core::Detector d = full_detector();
  Rng rng(99);
  int fp = 0;
  const std::size_t n = 2 * benign::all_benign_templates().size();
  for (std::size_t i = 0; i < n; ++i) {
    const isa::Program p = benign::generate_benign(i, rng);
    fp += d.scan(p).is_attack();
  }
  EXPECT_LE(fp, static_cast<int>(n / 10)) << "benign false positives";
}

TEST(EndToEnd, CryptoKernelsAreTheHardCaseAndStayBenign) {
  // Table III includes crypto because key-dependent table lookups resemble
  // attack access patterns; the structural model must not be fooled.
  const core::Detector d = full_detector();
  Rng rng(7);
  for (int k = 0; k < 6; ++k) {
    Rng gen = rng.split();
    const isa::Program aes = benign::aes_ttables(gen);
    EXPECT_FALSE(d.scan(aes).is_attack()) << "AES flagged, iteration " << k;
    Rng gen2 = rng.split();
    const isa::Program rsa = benign::rsa_modexp(gen2);
    EXPECT_FALSE(d.scan(rsa).is_attack()) << "RSA flagged, iteration " << k;
  }
}

TEST(EndToEnd, SelfTimingBenignStaysBenign) {
  // rdtscp-using benchmarks are the hardest counter-profile decoys.
  const core::Detector d = full_detector();
  Rng rng(8);
  for (int k = 0; k < 4; ++k) {
    Rng gen = rng.split();
    EXPECT_FALSE(d.scan(benign::timed_kernel(gen)).is_attack());
    Rng gen2 = rng.split();
    EXPECT_FALSE(d.scan(benign::timed_lookup(gen2)).is_attack());
    Rng gen3 = rng.split();
    EXPECT_FALSE(d.scan(benign::flush_writeback(gen3)).is_attack());
  }
}

TEST(EndToEnd, UnseenAttackFamilyStillDetected) {
  // The paper's generalization argument: any CSCA must perform repeated
  // cache operations across prepare/measure phases, so even a family the
  // repository has never seen (Evict+Time here) scores above threshold
  // against SOME enrolled model.
  const core::Detector d = full_detector();
  PocConfig config;
  config.secret = 6;
  const core::Detection det = d.scan(attacks::evict_time(config));
  EXPECT_TRUE(det.is_attack())
      << "best score only " << det.best_score;
}

// ---- Model pipeline invariants ----------------------------------------------------

TEST(Pipeline, ModelIsDeterministic) {
  const core::ModelBuilder builder(eval::experiment_model_config());
  const isa::Program poc = attacks::poc_by_name("FR-IAIK").build(PocConfig{});
  const core::AttackModel a = builder.build(poc, Family::kFlushReload);
  const core::AttackModel b = builder.build(poc, Family::kFlushReload);
  ASSERT_EQ(a.sequence.size(), b.sequence.size());
  for (std::size_t i = 0; i < a.sequence.size(); ++i) {
    EXPECT_EQ(a.sequence[i].block, b.sequence[i].block);
    EXPECT_EQ(a.sequence[i].norm_instrs, b.sequence[i].norm_instrs);
    EXPECT_EQ(a.sequence[i].cst.after.ao, b.sequence[i].cst.after.ao);
  }
}

TEST(Pipeline, SequenceIsTimestampOrdered) {
  const core::ModelBuilder builder(eval::experiment_model_config());
  for (const attacks::PocSpec& spec : attacks::all_pocs()) {
    const core::AttackModel m =
        builder.build(spec.build(PocConfig{}), spec.family);
    ASSERT_GT(m.sequence.size(), 2u) << spec.name;
    for (std::size_t i = 1; i < m.sequence.size(); ++i)
      EXPECT_LE(m.sequence[i - 1].first_cycle, m.sequence[i].first_cycle)
          << spec.name;
  }
}

TEST(Pipeline, SelfSimilarityIsPerfect) {
  const core::ModelBuilder builder(eval::experiment_model_config());
  const core::DtwConfig dtw = eval::experiment_dtw_config();
  for (const attacks::PocSpec& spec : attacks::all_pocs()) {
    const core::AttackModel m =
        builder.build(spec.build(PocConfig{}), spec.family);
    EXPECT_DOUBLE_EQ(core::similarity(m.sequence, m.sequence, dtw), 1.0)
        << spec.name;
  }
}

TEST(Pipeline, SimilarityIsSymmetric) {
  const core::ModelBuilder builder(eval::experiment_model_config());
  const core::DtwConfig dtw = eval::experiment_dtw_config();
  const core::AttackModel a = builder.build(
      attacks::poc_by_name("FR-IAIK").build(PocConfig{}), Family::kFlushReload);
  const core::AttackModel b = builder.build(
      attacks::poc_by_name("PP-IAIK").build(PocConfig{}), Family::kPrimeProbe);
  EXPECT_DOUBLE_EQ(core::similarity(a.sequence, b.sequence, dtw),
                   core::similarity(b.sequence, a.sequence, dtw));
}

TEST(Pipeline, TableVScenarioBandsHold) {
  // The headline behavioral claim: attacker-only comparisons > 66%,
  // attack-vs-benign < 16% (paper Table V).
  const auto rows = eval::run_scenarios();
  for (std::size_t i = 0; i + 1 < rows.size(); ++i)
    EXPECT_GT(rows[i].score, 0.66) << rows[i].id;
  EXPECT_LT(rows.back().score, 0.16);
}

// ---- Robustness / failure injection ------------------------------------------------

TEST(Robustness, NonHaltingProgramStillModels) {
  // A program that hits the instruction limit must still produce a model
  // (the profile is simply truncated), not crash.
  const isa::Program p = isa::assemble(R"(
      loop:
      mov rax, [0x10000]
      mov rbx, [0x20000]
      jmp loop
  )");
  core::ModelConfig config;
  config.exec.max_retired = 5000;
  const core::ModelBuilder builder(config);
  core::ModelArtifacts artifacts;
  EXPECT_NO_THROW(builder.build(p, Family::kBenign, &artifacts));
  EXPECT_EQ(artifacts.exit, trace::ExitReason::kInstrLimit);
}

TEST(Robustness, TinyProgramsProduceEmptyOrSmallModels) {
  const core::ModelBuilder builder(eval::experiment_model_config());
  const core::AttackModel m =
      builder.build(isa::assemble("nop\nhlt\n"), Family::kBenign);
  EXPECT_TRUE(m.sequence.empty());
}

TEST(Robustness, DetectorHandlesEmptyTargetModel) {
  const core::Detector d = full_detector();
  const core::Detection det = d.scan(core::CstBbs{});
  EXPECT_FALSE(det.is_attack());
  EXPECT_LT(det.best_score, 0.1);
}

TEST(Robustness, ScanningTheRepositoryPocsTwiceIsStable) {
  const core::Detector d = full_detector();
  const isa::Program poc = attacks::poc_by_name("PP-IAIK").build(PocConfig{});
  const core::Detection d1 = d.scan(poc);
  const core::Detection d2 = d.scan(poc);
  EXPECT_DOUBLE_EQ(d1.best_score, d2.best_score);
  EXPECT_EQ(d1.verdict, d2.verdict);
}

TEST(Robustness, DifferentCacheGeometryStillDetects) {
  // The pipeline is parameterized by cache geometry; a smaller LLC must
  // not break detection of the classic attacks.
  core::ModelConfig config;
  config.relevant.set_mapping = {256, 8, 64};
  core::Detector d(config, eval::experiment_dtw_config(), 0.45);
  d.enroll(attacks::poc_by_name("FR-IAIK").build(PocConfig{}),
           Family::kFlushReload);
  const core::Detection det =
      d.scan(attacks::poc_by_name("FR-Nepoche").build(PocConfig{}));
  EXPECT_TRUE(det.is_attack());
}

}  // namespace
}  // namespace scag
