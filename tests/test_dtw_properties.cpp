// Property tests for the DTW similarity layer (core/dtw.h), over CST-BBS
// sequences produced by the real modeling pipeline from attack PoCs,
// benign templates, and randomized programs (isa::random_program):
//   - self-similarity is exactly 1 and maximal;
//   - similarity is symmetric;
//   - cst_bbs_distance_lower_bound never exceeds the exact distance (and
//     similarity_upper_bound never falls below the exact similarity);
//   - bounded_similarity with ANY cutoff never changes a score that passes
//     the cutoff — unpruned results are bit-identical to similarity(), and
//     pruned pairs really are below the cutoff;
//   - a Sakoe-Chiba band narrower than the length difference of the two
//     sequences is widened to stay feasible, so the distance is finite
//     (regression for the DtwConfig::window edge case).
#include <gtest/gtest.h>

#include "seed_util.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/dtw.h"
#include "core/model.h"
#include "isa/random_program.h"
#include "support/rng.h"

namespace scag::core {
namespace {

/// The configuration axes the properties must hold on: the paper-literal
/// default, the calibrated benchmark configuration, and variations of
/// band, normalization, alphabet, and length penalty.
std::vector<DtwConfig> property_configs() {
  std::vector<DtwConfig> configs;
  configs.push_back(DtwConfig{});           // paper-literal
  configs.push_back(calibrated_dtw_config());

  DtwConfig banded = calibrated_dtw_config();
  banded.window = 2;                        // much narrower than many pairs
  configs.push_back(banded);

  DtwConfig accumulated;                    // full tokens, tight band,
  accumulated.window = 3;                   // length penalty on accumulated
  accumulated.length_penalty = 0.5;
  configs.push_back(accumulated);

  DtwConfig averaged;                       // path-averaged full tokens
  averaged.normalization = DtwNormalization::kPathAveraged;
  averaged.cost_scale = 2.0;
  configs.push_back(averaged);
  return configs;
}

class DtwProperties : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::vector<CstBbs>();
    const ModelBuilder builder;

    // Real attack and benign shapes: long, structured sequences.
    const attacks::PocConfig poc;
    corpus_->push_back(builder.build(attacks::fr_iaik(poc)).sequence);
    corpus_->push_back(builder.build(attacks::pp_iaik(poc)).sequence);
    corpus_->push_back(builder.build(attacks::ff_iaik(poc)).sequence);
    corpus_->push_back(builder.build(attacks::spectre_fr_ideal(poc)).sequence);
    Rng benign_rng(99);
    corpus_->push_back(
        builder.build(benign::aes_ttables(benign_rng)).sequence);
    corpus_->push_back(
        builder.build(benign::flush_writeback(benign_rng)).sequence);

    // Randomized programs: arbitrary (often short or empty) sequences.
    // Seed overridable for replay/exploration (docs/testing-guide.md).
    corpus_seed_ = testutil::test_seed(1234);
    Rng rng(corpus_seed_);
    for (int k = 0; k < 8; ++k) {
      Rng gen = rng.split();
      isa::RandomProgramOptions options;
      options.statements = 20 + 5 * k;
      corpus_->push_back(
          builder.build(isa::random_program(gen, options)).sequence);
    }
    corpus_->push_back(CstBbs{});  // explicit empty sequence
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::vector<CstBbs>* corpus_;
  static std::uint64_t corpus_seed_;
  // Fixture-lifetime trace: every failure in this suite reports the
  // corpus seed and how to replay it.
  ::testing::ScopedTrace seed_trace_{__FILE__, __LINE__,
                                     testutil::seed_note(corpus_seed_)};
};

std::vector<CstBbs>* DtwProperties::corpus_ = nullptr;
std::uint64_t DtwProperties::corpus_seed_ = 0;

TEST_F(DtwProperties, SelfSimilarityIsOneAndMaximal) {
  for (const DtwConfig& config : property_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      const CstBbs& s = (*corpus_)[i];
      if (s.empty()) continue;  // empty-vs-empty handled below
      EXPECT_EQ(similarity(s, s, config), 1.0) << "sequence " << i;
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        EXPECT_LE(similarity(s, (*corpus_)[j], config), 1.0)
            << "pair " << i << "," << j;
      }
    }
    EXPECT_EQ(similarity(CstBbs{}, CstBbs{}, config), 1.0);  // D = 0
  }
}

TEST_F(DtwProperties, SimilarityIsSymmetric) {
  for (const DtwConfig& config : property_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = i + 1; j < corpus_->size(); ++j) {
        const double ab = similarity((*corpus_)[i], (*corpus_)[j], config);
        const double ba = similarity((*corpus_)[j], (*corpus_)[i], config);
        // The DP transposes, so summation order may differ by rounding.
        EXPECT_NEAR(ab, ba, 1e-9) << "pair " << i << "," << j;
      }
    }
  }
}

TEST_F(DtwProperties, LowerBoundNeverExceedsExactDistance) {
  for (const DtwConfig& config : property_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        const CstBbs& a = (*corpus_)[i];
        const CstBbs& b = (*corpus_)[j];
        const double exact = cst_bbs_distance(a, b, config);
        const double lb = cst_bbs_distance_lower_bound(a, b, config);
        EXPECT_LE(lb, exact * (1.0 + 1e-12) + 1e-12)
            << "pair " << i << "," << j;
        EXPECT_GE(lb, 0.0) << "pair " << i << "," << j;
        // And the matching similarity upper bound stays above the exact
        // similarity.
        EXPECT_GE(similarity_upper_bound(a, b, config) + 1e-12,
                  similarity(a, b, config))
            << "pair " << i << "," << j;
      }
    }
  }
}

TEST_F(DtwProperties, BoundedSimilarityNeverChangesPassingScores) {
  const double cutoffs[] = {0.05, 0.2, 0.35, 0.45, 0.6, 0.75, 0.9};
  for (const DtwConfig& config : property_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        const CstBbs& a = (*corpus_)[i];
        const CstBbs& b = (*corpus_)[j];
        const double exact = similarity(a, b, config);
        for (double cutoff : cutoffs) {
          const BoundedScore bs = bounded_similarity(a, b, cutoff, config);
          if (bs.pruned == PruneKind::kNone) {
            // Not pruned: the score is the exact similarity, bit for bit.
            EXPECT_EQ(bs.score, exact)
                << "pair " << i << "," << j << " cutoff " << cutoff;
          } else {
            // Pruned: only allowed when the exact score misses the cutoff,
            // and the reported value is an upper bound below the cutoff.
            EXPECT_LT(exact, cutoff)
                << "pair " << i << "," << j << " cutoff " << cutoff
                << ": pruned a passing score";
            EXPECT_LT(bs.score, cutoff)
                << "pair " << i << "," << j << " cutoff " << cutoff;
            EXPECT_GE(bs.score + 1e-12, exact)
                << "pair " << i << "," << j << " cutoff " << cutoff
                << ": bound fell below the exact score";
          }
        }
      }
    }
  }
}

TEST_F(DtwProperties, ZeroCutoffDisablesPruning) {
  const DtwConfig config = calibrated_dtw_config();
  for (std::size_t i = 0; i < corpus_->size(); ++i) {
    for (std::size_t j = 0; j < corpus_->size(); ++j) {
      const BoundedScore bs =
          bounded_similarity((*corpus_)[i], (*corpus_)[j], 0.0, config);
      EXPECT_EQ(bs.pruned, PruneKind::kNone);
      EXPECT_EQ(bs.score, similarity((*corpus_)[i], (*corpus_)[j], config));
    }
  }
}

// Regression: a Sakoe-Chiba band narrower than |n - m| must be widened so
// the end cell stays reachable — the distance is finite, never inf/NaN.
TEST_F(DtwProperties, WindowNarrowerThanLengthDifferenceStaysFinite) {
  // Raw dtw(): 3 x 12 with window 1 (length difference 9).
  const auto cost = [](std::size_t i, std::size_t j) {
    return std::abs(static_cast<double>(i) - static_cast<double>(j)) / 12.0;
  };
  DtwConfig narrow;
  narrow.window = 1;
  const DtwResult r = dtw(3, 12, cost, narrow);
  EXPECT_TRUE(std::isfinite(r.distance));
  EXPECT_FALSE(r.abandoned);
  EXPECT_GE(r.path_length, 12u);  // a path covers max(n, m) cells at least

  // A band can only restrict the alignment, never improve it.
  const DtwResult unconstrained = dtw(3, 12, cost, DtwConfig{});
  EXPECT_GE(r.distance, unconstrained.distance - 1e-12);

  // Same property through the full sequence-level API, on every corpus
  // pair with a length mismatch larger than the band.
  DtwConfig banded = calibrated_dtw_config();
  banded.window = 1;
  for (std::size_t i = 0; i < corpus_->size(); ++i) {
    for (std::size_t j = 0; j < corpus_->size(); ++j) {
      const CstBbs& a = (*corpus_)[i];
      const CstBbs& b = (*corpus_)[j];
      const std::size_t diff =
          a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
      if (diff <= banded.window) continue;
      const double d = cst_bbs_distance(a, b, banded);
      ASSERT_TRUE(std::isfinite(d)) << "pair " << i << "," << j;
      const double s = similarity(a, b, banded);
      EXPECT_GT(s, 0.0) << "pair " << i << "," << j;
      EXPECT_LE(s, 1.0) << "pair " << i << "," << j;
    }
  }
}

TEST_F(DtwProperties, EmptySequenceConventions) {
  const auto never = [](std::size_t, std::size_t) -> double {
    ADD_FAILURE() << "cost function called for an empty alignment";
    return 0.0;
  };
  const DtwResult both = dtw(0, 0, never);
  EXPECT_EQ(both.distance, 0.0);
  EXPECT_EQ(both.path_length, 0u);

  const DtwResult one = dtw(0, 5, never);
  EXPECT_EQ(one.distance, 5.0);  // 1 per unmatched element
  EXPECT_EQ(one.path_length, 5u);

  // Sequence-level: empty-vs-nonempty goes through the exact path even
  // under a cutoff (degenerate alignments are O(1) already).
  const DtwConfig config = calibrated_dtw_config();
  for (const CstBbs& s : *corpus_) {
    const BoundedScore bs = bounded_similarity(CstBbs{}, s, 0.45, config);
    EXPECT_EQ(bs.pruned, PruneKind::kNone);
    EXPECT_EQ(bs.score, similarity(CstBbs{}, s, config));
  }
}

}  // namespace
}  // namespace scag::core
