// Tests for the from-scratch ML stack: features, standardization, SVM,
// linear/logistic regression, KNN, and cross-validation.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/crossval.h"
#include "ml/features.h"
#include "ml/knn.h"
#include "ml/linear.h"

namespace scag::ml {
namespace {

// ---- Synthetic data helpers ----------------------------------------------------

/// Two Gaussian blobs in d dimensions, linearly separable.
void make_blobs(Rng& rng, std::size_t n_per_class, std::size_t d,
                double separation, std::vector<FeatureVector>& xs,
                std::vector<int>& ys) {
  for (int cls = 0; cls < 2; ++cls) {
    for (std::size_t i = 0; i < n_per_class; ++i) {
      FeatureVector x(d);
      for (std::size_t k = 0; k < d; ++k)
        x[k] = rng.gaussian(cls == 0 ? -separation : separation, 1.0);
      xs.push_back(std::move(x));
      ys.push_back(cls);
    }
  }
}

double accuracy(const Classifier& model, const std::vector<FeatureVector>& xs,
                const std::vector<int>& ys) {
  std::size_t ok = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    ok += model.predict(xs[i]) == ys[i];
  return static_cast<double>(ok) / static_cast<double>(xs.size());
}

// ---- Features --------------------------------------------------------------------

TEST(Features, DimensionIsStable) {
  trace::ExecutionProfile p;
  p.cycles = 1000;
  p.retired = 500;
  const FeatureVector x = extract_features(p);
  EXPECT_EQ(x.size(), feature_dim());
}

TEST(Features, RatesScaleWithCounts) {
  trace::ExecutionProfile a, b;
  a.cycles = b.cycles = 1000;
  a.retired = b.retired = 100;
  a.totals.bump(trace::HpcEvent::kL1dLoadMiss, 10);
  b.totals.bump(trace::HpcEvent::kL1dLoadMiss, 20);
  const FeatureVector xa = extract_features(a);
  const FeatureVector xb = extract_features(b);
  // The rate feature of event 0 is at offset 3 (mean, std, max, rate).
  EXPECT_DOUBLE_EQ(xb[3], 2.0 * xa[3]);
}

TEST(Features, SampleDeltasSummarized) {
  trace::ExecutionProfile p;
  p.cycles = 300;
  p.sample_interval = 100;
  trace::HpcCounters s1, s2, s3;
  s1.bump(trace::HpcEvent::kCacheMiss, 4);
  s2 = s1;
  s2.bump(trace::HpcEvent::kCacheMiss, 6);
  s3 = s2;
  p.samples = {s1, s2, s3};
  const FeatureVector x = extract_features(p);
  // Deltas for kCacheMiss are {4, 6, 0}: mean 10/3, max 6.
  const std::size_t base =
      static_cast<std::size_t>(trace::HpcEvent::kCacheMiss) * 4;
  EXPECT_NEAR(x[base + 0], 10.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(x[base + 2], 6.0);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Rng rng(1);
  std::vector<FeatureVector> xs;
  for (int i = 0; i < 500; ++i)
    xs.push_back({rng.gaussian(10, 3), rng.gaussian(-5, 0.5)});
  Standardizer s;
  s.fit(xs);
  const auto t = s.transform_all(xs);
  double m0 = 0, m1 = 0;
  for (const auto& x : t) {
    m0 += x[0];
    m1 += x[1];
  }
  EXPECT_NEAR(m0 / 500, 0.0, 1e-9);
  EXPECT_NEAR(m1 / 500, 0.0, 1e-9);
}

TEST(Standardizer, ConstantFeatureDoesNotDivideByZero) {
  std::vector<FeatureVector> xs = {{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}};
  Standardizer s;
  s.fit(xs);
  const FeatureVector t = s.transform({2.0, 5.0});
  EXPECT_TRUE(std::isfinite(t[1]));
  EXPECT_DOUBLE_EQ(t[1], 0.0);
}

// ---- Classifiers -----------------------------------------------------------------

TEST(LinearSvm, SeparatesBlobs) {
  Rng rng(2);
  std::vector<FeatureVector> xs;
  std::vector<int> ys;
  make_blobs(rng, 100, 6, 2.0, xs, ys);
  LinearSvm svm;
  Rng fit_rng(3);
  svm.fit(xs, ys, 2, fit_rng);
  EXPECT_GT(accuracy(svm, xs, ys), 0.97);
}

TEST(LinearSvm, MulticlassOneVsRest) {
  Rng rng(4);
  std::vector<FeatureVector> xs;
  std::vector<int> ys;
  // Three blobs at distinct corners.
  const double centers[3][2] = {{5, 0}, {-5, 0}, {0, 5}};
  for (int cls = 0; cls < 3; ++cls)
    for (int i = 0; i < 80; ++i) {
      xs.push_back({rng.gaussian(centers[cls][0], 1.0),
                    rng.gaussian(centers[cls][1], 1.0)});
      ys.push_back(cls);
    }
  LinearSvm svm;
  Rng fit_rng(5);
  svm.fit(xs, ys, 3, fit_rng);
  EXPECT_GT(accuracy(svm, xs, ys), 0.95);
}

TEST(LogisticRegression, SeparatesBlobsWithProbabilities) {
  Rng rng(6);
  std::vector<FeatureVector> xs;
  std::vector<int> ys;
  make_blobs(rng, 100, 4, 2.0, xs, ys);
  LogisticRegression lr;
  Rng fit_rng(7);
  lr.fit(xs, ys, 2, fit_rng);
  EXPECT_GT(accuracy(lr, xs, ys), 0.97);
  // Probabilities are proper.
  for (int c = 0; c < 2; ++c) {
    const double p = lr.probability(xs[0], c);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LinearRegressionClassifier, WorksButIsWeakerOnHardData) {
  Rng rng(8);
  std::vector<FeatureVector> xs;
  std::vector<int> ys;
  make_blobs(rng, 150, 4, 2.0, xs, ys);
  LinearRegressionClassifier lin;
  Rng fit_rng(9);
  lin.fit(xs, ys, 2, fit_rng);
  EXPECT_GT(accuracy(lin, xs, ys), 0.9);
}

TEST(Knn, ExactNeighborsVote) {
  std::vector<FeatureVector> xs = {{0, 0}, {0, 1}, {10, 10}, {10, 11}, {10, 9}};
  std::vector<int> ys = {0, 0, 1, 1, 1};
  Knn knn(3);
  Rng rng(10);
  knn.fit(xs, ys, 2, rng);
  EXPECT_EQ(knn.predict({0.2, 0.5}), 0);
  EXPECT_EQ(knn.predict({9.5, 10.0}), 1);
}

TEST(Knn, KLargerThanTrainingSetIsClamped) {
  std::vector<FeatureVector> xs = {{0.0}, {1.0}};
  std::vector<int> ys = {0, 1};
  Knn knn(99);
  Rng rng(11);
  knn.fit(xs, ys, 2, rng);
  EXPECT_NO_THROW(knn.predict({0.4}));
}

TEST(Classifiers, RejectBadTrainingSets) {
  LinearSvm svm;
  Rng rng(12);
  std::vector<FeatureVector> xs = {{1.0}};
  std::vector<int> bad_labels = {5};
  EXPECT_THROW(svm.fit(xs, bad_labels, 2, rng), std::invalid_argument);
  std::vector<FeatureVector> empty;
  std::vector<int> no_labels;
  EXPECT_THROW(svm.fit(empty, no_labels, 2, rng), std::invalid_argument);
}

// ---- Cross-validation ---------------------------------------------------------------

TEST(CrossVal, HighAccuracyOnSeparableData) {
  Rng rng(13);
  std::vector<FeatureVector> xs;
  std::vector<int> ys;
  make_blobs(rng, 60, 4, 3.0, xs, ys);
  Rng cv_rng(14);
  const double acc = kfold_accuracy(
      [] { return std::make_unique<LinearSvm>(); }, xs, ys, 2, 5, cv_rng);
  EXPECT_GT(acc, 0.95);
}

TEST(CrossVal, RejectsSingleFold) {
  Rng rng(15);
  std::vector<FeatureVector> xs = {{0.0}, {1.0}};
  std::vector<int> ys = {0, 1};
  EXPECT_THROW(kfold_accuracy([] { return std::make_unique<LinearSvm>(); },
                              xs, ys, 2, 1, rng),
               std::invalid_argument);
}

TEST(CrossVal, SelectAndTrainPicksWorkingCandidate) {
  Rng rng(16);
  std::vector<FeatureVector> xs;
  std::vector<int> ys;
  make_blobs(rng, 60, 3, 3.0, xs, ys);
  // One degenerate candidate (k too large smooths everything), one good.
  std::vector<std::function<std::unique_ptr<Classifier>()>> candidates = {
      [] { return std::make_unique<Knn>(1); },
      [] { return std::make_unique<Knn>(119); },
  };
  Rng sel_rng(17);
  auto model = select_and_train(candidates, xs, ys, 2, 5, sel_rng);
  EXPECT_GT(accuracy(*model, xs, ys), 0.95);
}

}  // namespace
}  // namespace scag::ml
