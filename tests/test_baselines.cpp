// Tests for the baseline detectors: SCADET rules and the learning wrappers.
#include <gtest/gtest.h>

#include "attacks/registry.h"
#include "baselines/learning.h"
#include "baselines/scadet.h"
#include "benign/registry.h"
#include "cfg/cfg.h"
#include "cpu/interpreter.h"
#include "isa/assembler.h"
#include "mutation/mutator.h"

namespace scag::baselines {
namespace {

using attacks::PocConfig;

trace::ExecutionProfile profile_of(const isa::Program& p,
                                   std::uint64_t sample_interval = 0) {
  cpu::ExecOptions opts;
  opts.sample_interval = sample_interval;
  cpu::Interpreter interp(opts);
  return interp.run(p).profile;
}

ScadetResult run_scadet(const isa::Program& p) {
  const cfg::Cfg cfg = cfg::Cfg::build(p);
  return scadet_detect(cfg, profile_of(p));
}

// ---- SCADET ------------------------------------------------------------------

TEST(Scadet, DetectsCleanPrimeProbe) {
  const auto r = run_scadet(attacks::poc_by_name("PP-IAIK").build(PocConfig{}));
  EXPECT_TRUE(r.detected) << r.reason;
  EXPECT_EQ(r.verdict, core::Family::kPrimeProbe);
}

TEST(Scadet, IgnoresFlushReloadFamily) {
  for (const char* name : {"FR-IAIK", "FR-Mastik", "FR-Nepoche", "FF-IAIK"}) {
    const auto r = run_scadet(attacks::poc_by_name(name).build(PocConfig{}));
    EXPECT_FALSE(r.detected) << name << ": " << r.reason;
  }
}

TEST(Scadet, IgnoresBenignPrograms) {
  Rng rng(21);
  for (std::size_t i = 0; i < benign::all_benign_templates().size(); ++i) {
    const isa::Program p = benign::generate_benign(i, rng);
    const auto r = run_scadet(p);
    EXPECT_FALSE(r.detected) << p.name() << ": " << r.reason;
  }
}

TEST(Scadet, BrittleUnderObfuscation) {
  // The designated rules are exact patterns: heavy junk breaks most of
  // them (this is exactly the weakness Table VI documents).
  Rng rng(23);
  int detected = 0;
  const int trials = 12;
  for (int k = 0; k < trials; ++k) {
    const isa::Program poc = attacks::poc_by_name("PP-IAIK").build(PocConfig{});
    Rng mut_rng = rng.split();
    const isa::Program obf = mutation::obfuscate(poc, mut_rng);
    detected += run_scadet(obf).detected;
  }
  EXPECT_LT(detected, trials / 2);
}

TEST(Scadet, RequiresTimingNearProbe) {
  // A prime-style double walk WITHOUT any rdtscp must not match.
  const isa::Program p = isa::assemble(R"(
      mov rcx, 2
      round:
      mov rsi, 0x40000
      mov rdx, 0
      walk:
      mov rbx, [rsi]
      add rsi, 65536
      inc rdx
      cmp rdx, 16
      jl walk
      dec rcx
      jne round
      hlt
  )");
  const auto r = run_scadet(p);
  EXPECT_FALSE(r.detected) << r.reason;
}

TEST(Scadet, MinWaysThresholdRespected) {
  // Walks of fewer than min_ways same-set lines are not prime walks.
  const isa::Program p = isa::assemble(R"(
      rdtscp r8
      mov rcx, 2
      round:
      mov rsi, 0x40000
      mov rdx, 0
      walk:
      mov rbx, [rsi]
      add rsi, 65536
      inc rdx
      cmp rdx, 4
      jl walk
      dec rcx
      jne round
      rdtscp r9
      hlt
  )");
  const auto r = run_scadet(p);
  EXPECT_FALSE(r.detected);
}

// ---- Learning detectors ----------------------------------------------------------

TEST(Learning, NamesAreStable) {
  EXPECT_EQ(learner_name(LearnerKind::kSvmNw), "SVM-NW");
  EXPECT_EQ(learner_name(LearnerKind::kLrNw), "LR-NW");
  EXPECT_EQ(learner_name(LearnerKind::kKnnMlfm), "KNN-MLFM");
}

TEST(Learning, ClassifyBeforeTrainThrows) {
  LearningDetector d(LearnerKind::kSvmNw);
  trace::ExecutionProfile p;
  EXPECT_THROW(d.classify(p), std::logic_error);
}

TEST(Learning, TrainRejectsEmptyOrMismatched) {
  LearningDetector d(LearnerKind::kKnnMlfm);
  Rng rng(1);
  std::vector<trace::ExecutionProfile> profiles(2);
  std::vector<core::Family> labels = {core::Family::kBenign};
  EXPECT_THROW(d.train(profiles, labels, rng), std::invalid_argument);
}

class LearnerSeparatesAttackFromBenign
    : public ::testing::TestWithParam<LearnerKind> {};

TEST_P(LearnerSeparatesAttackFromBenign, OnSmallCorpus) {
  // Train on a handful of FR samples vs benign samples, then classify
  // held-out ones. All three learners must beat chance comfortably on
  // this clean task.
  Rng rng(29);
  std::vector<trace::ExecutionProfile> profiles;
  std::vector<core::Family> labels;
  std::vector<std::pair<trace::ExecutionProfile, core::Family>> held_out;

  for (int i = 0; i < 12; ++i) {
    PocConfig config;
    config.secret = 1 + rng.below(15);
    const isa::Program poc =
        attacks::poc_by_name(i % 2 ? "FR-IAIK" : "FR-Nepoche").build(config);
    Rng mut_rng = rng.split();
    const isa::Program mut = mutation::mutate(poc, mut_rng);
    auto profile = profile_of(mut, 2000);
    if (i < 9) {
      profiles.push_back(std::move(profile));
      labels.push_back(core::Family::kFlushReload);
    } else {
      held_out.emplace_back(std::move(profile), core::Family::kFlushReload);
    }
  }
  for (int i = 0; i < 12; ++i) {
    Rng gen = rng.split();
    const isa::Program p = benign::generate_benign(static_cast<std::size_t>(i), gen);
    auto profile = profile_of(p, 2000);
    if (i < 9) {
      profiles.push_back(std::move(profile));
      labels.push_back(core::Family::kBenign);
    } else {
      held_out.emplace_back(std::move(profile), core::Family::kBenign);
    }
  }

  LearningDetector detector(GetParam(), /*cv_folds=*/3);
  Rng train_rng(31);
  detector.train(profiles, labels, train_rng);
  int correct = 0;
  for (const auto& [profile, truth] : held_out)
    correct += detector.classify(profile) == truth;
  EXPECT_GE(correct, 4) << learner_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllLearners, LearnerSeparatesAttackFromBenign,
                         ::testing::Values(LearnerKind::kSvmNw,
                                           LearnerKind::kLrNw,
                                           LearnerKind::kKnnMlfm),
                         [](const auto& info) {
                           std::string n(learner_name(info.param));
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace scag::baselines
