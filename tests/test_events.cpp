// Tests for the observability plane's event layer (support/events.h) and
// Prometheus exposition (support/prometheus.h): the Vyukov MPSC ring's
// ordering and drop-counter conservation under multi-producer stress
// (1/2/8 threads — the TSan pass re-runs this binary instrumented), the
// JSONL schema round trip of every event type, the journal's file and
// ring-only modes, the flight recorder's tail-vs-journal agreement, and
// 0.0.4 exposition rendering/validation plus the Unix-socket listener.
//
// Links against scag_support only, so the suite also builds in a
// -DSCAG_METRICS_OFF tree; live-journal tests gate on
// EventJournal::compiled_in() where behavior legitimately differs.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/events.h"
#include "support/metrics.h"
#include "support/prometheus.h"

namespace scag::support::events {
namespace {

[[maybe_unused]] std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() /
         ("scag_test_events_" + name);
}

/// Stops the global journal (and scrubs the flight tails) even when an
/// assertion fails mid-test, so journal state never leaks across tests.
struct JournalSession {
  ~JournalSession() {
    EventJournal::global().stop();
    flight::clear();
  }
};

Event make_event(EventType type) {
  Event e;
  e.type = type;
  e.ts_ns = 123456789;
  e.thread = 3;
  e.scan = 41;
  e.family = 2;
  e.stage = 1;
  e.a = 0xdeadbeefcafef00dull;
  e.b = 77;
  e.set_detail("detector.scan");
  return e;
}

// ---------------------------------------------------------------------------
// Event model + JSONL schema.

TEST(Event, IsOneCacheLineAndPaddingFree) {
  EXPECT_EQ(sizeof(Event), 64u);
  // memcmp-comparable: every byte is covered by a member (the tests below
  // and the flight/journal agreement check rely on this).
  EXPECT_EQ(sizeof(Event), 8 + 8 + 8 + 4 + 4 + 1 + 1 + 1 +
                               (Event::kDetailCap + 1));
}

TEST(Event, TypeNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    const auto t = static_cast<EventType>(i);
    const auto parsed = parse_event_type(event_type_name(t));
    ASSERT_TRUE(parsed.has_value()) << event_type_name(t);
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(parse_event_type("no-such-event").has_value());
  EXPECT_FALSE(parse_event_type("").has_value());
}

TEST(Event, DetailTruncatesAndStaysTerminated) {
  Event e;
  e.set_detail(std::string(100, 'x'));
  EXPECT_EQ(e.detail_view().size(), Event::kDetailCap);
  EXPECT_EQ(e.detail[Event::kDetailCap], '\0');
  e.set_detail("short");
  EXPECT_EQ(e.detail_view(), "short");
}

TEST(EventJson, RoundTripsEveryType) {
  for (std::size_t i = 0; i < kNumEventTypes; ++i) {
    const Event e = make_event(static_cast<EventType>(i));
    const std::string line = event_to_json(e);
    Event back;
    ASSERT_TRUE(event_from_json(line, back)) << line;
    EXPECT_EQ(std::memcmp(&e, &back, sizeof(Event)), 0) << line;
  }
}

TEST(EventJson, ScoreBitsSurviveExactly) {
  // IEEE-754 bits ride in `a` as unsigned decimals: the bit pattern of a
  // verdict score must survive the round trip unchanged, including
  // patterns that do not round-trip through decimal doubles.
  for (const double score : {0.7300000000000001, 1.0 / 3.0, 0.0, 1.0}) {
    Event e = make_event(EventType::kScanVerdict);
    e.a = std::bit_cast<std::uint64_t>(score);
    Event back;
    ASSERT_TRUE(event_from_json(event_to_json(e), back));
    EXPECT_EQ(back.a, std::bit_cast<std::uint64_t>(score));
  }
}

TEST(EventJson, RejectsNonEventLines) {
  Event e;
  // A journal's header and summary records carry no "type" field.
  EXPECT_FALSE(event_from_json(
      "{\"schema\":\"scag-events-v1\",\"ring_capacity\":16384}", e));
  EXPECT_FALSE(event_from_json(
      "{\"schema\":\"scag-events-v1\",\"summary\":true,\"emitted\":3}", e));
  EXPECT_FALSE(event_from_json("", e));
  EXPECT_FALSE(event_from_json("not json", e));
  EXPECT_FALSE(event_from_json("{\"type\":\"bogus-type\"}", e));
  EXPECT_FALSE(event_from_json("{\"type\":\"scan-start\"", e));  // unclosed
}

#ifndef SCAG_METRICS_OFF

// ---------------------------------------------------------------------------
// EventRing: ordering, drop accounting, multi-producer conservation.

TEST(EventRing, FifoOrderSingleThread) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Event e;
    e.a = i;
    ASSERT_TRUE(ring.push(e));
  }
  Event out;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out.a, i);
  }
  EXPECT_FALSE(ring.pop(out));
  EXPECT_EQ(ring.emitted(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(5).capacity(), 8u);
  EXPECT_EQ(EventRing(8).capacity(), 8u);
  EXPECT_EQ(EventRing(0).capacity(), 2u);
}

TEST(EventRing, FullRingDropsAndCounts) {
  EventRing ring(4);
  Event e;
  for (int i = 0; i < 10; ++i) ring.push(e);
  EXPECT_EQ(ring.emitted(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Consuming frees slots: pushes succeed again.
  Event out;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_TRUE(ring.push(e));
  EXPECT_EQ(ring.emitted(), 5u);
}

TEST(EventRing, WrapsThroughManyLaps) {
  EventRing ring(4);
  Event out;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Event e;
    e.a = i;
    ASSERT_TRUE(ring.push(e));
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out.a, i);
  }
  EXPECT_EQ(ring.emitted(), 1000u);
  EXPECT_EQ(ring.dropped(), 0u);
}

/// The satellite's conservation stress: P producers hammer a small ring
/// while one consumer drains concurrently. Afterwards every successful
/// push must have been popped exactly once and the books must balance:
/// attempts == emitted + dropped, popped == emitted.
void mpsc_conservation_stress(unsigned producers) {
  constexpr std::uint64_t kPerProducer = 20000;
  EventRing ring(64);  // small on purpose: forces wrap and drops
  std::atomic<bool> done{false};
  std::uint64_t popped = 0;
  std::uint64_t payload_sum = 0;

  std::thread consumer([&] {
    Event out;
    for (;;) {
      if (ring.pop(out)) {
        ++popped;
        payload_sum += out.a;
      } else if (done.load(std::memory_order_acquire)) {
        // Producers finished; drain whatever is still queued.
        while (ring.pop(out)) {
          ++popped;
          payload_sum += out.a;
        }
        return;
      }
    }
  });

  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> pushed_sum{0};
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::uint64_t mine = 0;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        Event e;
        e.a = p * kPerProducer + i + 1;
        if (ring.push(e)) mine += e.a;
      }
      pushed_sum.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(ring.emitted() + ring.dropped(),
            std::uint64_t{producers} * kPerProducer);
  EXPECT_EQ(popped, ring.emitted());
  // Payload conservation: the consumer saw exactly the accepted events,
  // none lost, none duplicated, none torn (a torn 64-bit payload would
  // break the sum with overwhelming probability).
  EXPECT_EQ(payload_sum, pushed_sum.load());
  EXPECT_GT(ring.dropped(), 0u) << "stress did not exercise the full-ring "
                                   "path; shrink the ring";
}

TEST(EventRing, ConservationOneProducer) { mpsc_conservation_stress(1); }
TEST(EventRing, ConservationTwoProducers) { mpsc_conservation_stress(2); }
TEST(EventRing, ConservationEightProducers) { mpsc_conservation_stress(8); }

// ---------------------------------------------------------------------------
// EventJournal: ring-only mode, file mode, accounting.

TEST(EventJournal, DisabledEmitIsNoOp) {
  EventJournal& j = EventJournal::global();
  ASSERT_FALSE(j.enabled());
  j.emit(make_event(EventType::kScanStart));  // must not crash or record
  EXPECT_EQ(j.stats().emitted, 0u);
}

TEST(EventJournal, RingOnlyDrainAndConservation) {
  JournalSession session;
  EventJournal& j = EventJournal::global();
  JournalConfig config;
  config.ring_capacity = 64;
  j.start(config);
  EXPECT_TRUE(j.enabled());
  EXPECT_THROW(j.start(config), std::logic_error);  // no double start

  for (int i = 0; i < 10; ++i) j.emit(make_event(EventType::kScanStart));
  std::vector<Event> drained;
  EXPECT_EQ(j.drain(drained), 10u);
  EXPECT_EQ(drained.size(), 10u);
  // emit() stamps timestamp and thread; the rest is caller-provided.
  for (const Event& e : drained) {
    EXPECT_GT(e.ts_ns, 0u);
    EXPECT_EQ(e.scan, 41u);  // make_event's explicit scan id wins
  }
  j.stop();
  const JournalStats st = j.stats();
  EXPECT_EQ(st.emitted, 10u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.written, 10u);
  EXPECT_EQ(st.emitted, st.written + st.dropped);
  EXPECT_FALSE(j.enabled());
  j.stop();  // idempotent
}

TEST(EventJournal, SaturatedRingDropsAreCounted) {
  JournalSession session;
  EventJournal& j = EventJournal::global();
  JournalConfig config;
  config.ring_capacity = 4;  // tiny and never drained: every emit past 4 drops
  j.start(config);
  for (int i = 0; i < 100; ++i) j.emit(make_event(EventType::kPruneStage));
  j.stop();
  const JournalStats st = j.stats();
  EXPECT_EQ(st.emitted, 100u);  // every emit() call, accepted or dropped
  EXPECT_EQ(st.dropped, 96u);
  EXPECT_EQ(st.written, 4u);                       // stop() drains the 4
  EXPECT_EQ(st.emitted, st.written + st.dropped);  // conservation
}

TEST(EventJournal, FileModeWritesSchemaEventsAndSummary) {
  JournalSession session;
  const std::filesystem::path path = temp_path("journal.jsonl");
  {
    EventJournal& j = EventJournal::global();
    JournalConfig config;
    config.path = path.string();
    j.start(config);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
      threads.emplace_back([&j] {
        for (int i = 0; i < 50; ++i)
          j.emit(make_event(EventType::kCascadeCutoff));
      });
    for (std::thread& th : threads) th.join();
    j.stop();
    const JournalStats st = j.stats();
    EXPECT_EQ(st.emitted, 200u);
    EXPECT_EQ(st.emitted, st.written + st.dropped);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"schema\":\"scag-events-v1\""), std::string::npos);
  EXPECT_NE(line.find("\"ring_capacity\""), std::string::npos);

  std::size_t events = 0;
  bool saw_summary = false;
  Event e;
  while (std::getline(in, line)) {
    if (event_from_json(line, e)) {
      ++events;
      EXPECT_EQ(e.type, EventType::kCascadeCutoff);
    } else {
      EXPECT_NE(line.find("\"summary\":true"), std::string::npos) << line;
      EXPECT_NE(line.find("\"emitted\":"), std::string::npos);
      saw_summary = true;
    }
  }
  EXPECT_EQ(events, EventJournal::global().stats().written);
  EXPECT_TRUE(saw_summary);
  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + ".flight");
}

TEST(EventJournal, UnwritableJournalPathFailsAtStart) {
  JournalSession session;
  JournalConfig config;
  config.path = "/nonexistent-dir/journal.jsonl";
  EXPECT_THROW(EventJournal::global().start(config), std::runtime_error);
  EXPECT_FALSE(EventJournal::global().enabled());
}

TEST(EventJournal, SyncRegistryCountersPushesDeltasOnce) {
  if (!Registry::compiled_in()) GTEST_SKIP();
  JournalSession session;
  Counter& emitted = Registry::global().counter("events.emitted");
  const std::uint64_t before = emitted.value();

  EventJournal& j = EventJournal::global();
  JournalConfig config;
  config.ring_capacity = 64;
  j.start(config);
  for (int i = 0; i < 7; ++i) j.emit(make_event(EventType::kScanStart));
  j.sync_registry_counters();
  EXPECT_EQ(emitted.value(), before + 7);
  j.sync_registry_counters();  // delta-based: no double counting
  EXPECT_EQ(emitted.value(), before + 7);
  std::vector<Event> drained;
  j.drain(drained);
  j.stop();  // mirrors the remaining delta (none for emitted)
  EXPECT_EQ(emitted.value(), before + 7);
}

// ---------------------------------------------------------------------------
// Scan correlation.

TEST(ScanScope, TagsEventsAndRestores) {
  JournalSession session;
  EventJournal& j = EventJournal::global();
  JournalConfig config;
  config.ring_capacity = 64;
  j.start(config);

  EXPECT_EQ(current_scan_id(), 0u);
  std::uint32_t outer_id = 0;
  {
    ScanScope outer(17);
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(current_scan_id(), outer_id);
    Event e;
    e.type = EventType::kFailpointHit;
    j.emit(e);
    {
      ScanScope inner(3);
      EXPECT_NE(inner.id(), outer_id);
      EXPECT_EQ(current_scan_id(), inner.id());
    }
    EXPECT_EQ(current_scan_id(), outer_id);
  }
  EXPECT_EQ(current_scan_id(), 0u);

  std::vector<Event> drained;
  j.drain(drained);
  j.stop();
  ASSERT_EQ(drained.size(), 3u);  // outer start, failpoint, inner start
  EXPECT_EQ(drained[0].type, EventType::kScanStart);
  EXPECT_EQ(drained[0].a, 17u);
  EXPECT_EQ(drained[0].scan, outer_id);
  EXPECT_EQ(drained[1].type, EventType::kFailpointHit);
  EXPECT_EQ(drained[1].scan, outer_id);  // tagged by the enclosing scope
  EXPECT_EQ(drained[2].type, EventType::kScanStart);
}

TEST(ScanScope, NoOpWhenJournalDisabled) {
  ASSERT_FALSE(EventJournal::global().enabled());
  ScanScope scope(5);
  EXPECT_EQ(scope.id(), 0u);
  EXPECT_EQ(current_scan_id(), 0u);
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorder, TailMatchesJournalLastN) {
  JournalSession session;
  EventJournal& j = EventJournal::global();
  JournalConfig config;
  config.ring_capacity = 1u << 10;
  j.start(config);

  // Emit more than a tail holds so the dump is the *most recent* window.
  constexpr std::size_t kEmit = flight::kTailLen + 37;
  for (std::size_t i = 0; i < kEmit; ++i) {
    Event e = make_event(EventType::kScanVerdict);
    e.b = i;
    j.emit(e);
  }
  std::vector<Event> journal_events;
  j.drain(journal_events);
  ASSERT_EQ(journal_events.size(), kEmit);

  // Parse this thread's tail back out of the dump text.
  const std::string dump = flight::dump_text();
  EXPECT_NE(dump.find("\"schema\":\"scag-flight-v1\""), std::string::npos);
  const std::uint32_t self = journal_events.front().thread;
  std::vector<Event> tail;
  std::istringstream lines(dump);
  std::string line;
  Event e;
  while (std::getline(lines, line))
    if (event_from_json(line, e) && e.thread == self) tail.push_back(e);

  // The acceptance contract: the dump's tail IS the journal's last N
  // events, bit for bit.
  ASSERT_EQ(tail.size(), flight::kTailLen);
  const std::size_t offset = journal_events.size() - tail.size();
  for (std::size_t i = 0; i < tail.size(); ++i)
    EXPECT_EQ(std::memcmp(&tail[i], &journal_events[offset + i],
                          sizeof(Event)),
              0)
        << "tail diverges from journal at tail index " << i;
  j.stop();
}

TEST(FlightRecorder, DumpToFileAndClear) {
  JournalSession session;
  EventJournal& j = EventJournal::global();
  JournalConfig config;
  config.ring_capacity = 64;
  j.start(config);
  j.emit(make_event(EventType::kDeadlineTrip));

  const std::filesystem::path path = temp_path("flight.dump");
  ASSERT_TRUE(flight::dump_to_file(path.string()));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("scag-flight-v1"), std::string::npos);
  EXPECT_NE(ss.str().find("deadline-trip"), std::string::npos);
  std::filesystem::remove(path);

  flight::clear();
  const std::string after = flight::dump_text();
  EXPECT_EQ(after.find("deadline-trip"), std::string::npos);
  EXPECT_FALSE(flight::dump_to_file("/nonexistent-dir/flight.dump"));
}

TEST(FlightRecorder, DeadlineTripTriggersAutomaticDump) {
  JournalSession session;
  EventJournal& j = EventJournal::global();
  const std::filesystem::path flight_path = temp_path("trip.flight");
  JournalConfig config;
  config.ring_capacity = 64;
  config.flight_path = flight_path.string();
  j.start(config);

  emit_failpoint_hit("batch.scan_target");
  emit_deadline_trip(5'000'000);

  EXPECT_TRUE(std::filesystem::exists(flight_path));
  EXPECT_EQ(j.stats().flight_dumps, 1u);
  std::ifstream in(flight_path);
  std::stringstream ss;
  ss << in.rdbuf();
  // The dump carries the events that led up to the trip.
  EXPECT_NE(ss.str().find("failpoint-hit"), std::string::npos);
  EXPECT_NE(ss.str().find("deadline-trip"), std::string::npos);
  j.stop();
  std::filesystem::remove(flight_path);
}

#endif  // SCAG_METRICS_OFF

TEST(EventJournalMode, CompiledInMatchesMetricsLayer) {
  // The journal compiles out exactly when the metrics layer does: one
  // -DSCAG_METRICS_OFF switch removes the whole observability plane.
  EXPECT_EQ(EventJournal::compiled_in(), Registry::compiled_in());
#ifdef SCAG_METRICS_OFF
  EventJournal& j = EventJournal::global();
  j.start(JournalConfig{});  // all no-ops; must not throw or record
  j.emit(Event{});
  EXPECT_FALSE(j.enabled());
  EXPECT_EQ(j.stats().emitted, 0u);
  j.stop();
  ScanScope scope(1);
  EXPECT_EQ(scope.id(), 0u);
#endif
}

}  // namespace
}  // namespace scag::support::events

// ---------------------------------------------------------------------------
// Prometheus exposition (support/prometheus.h).

namespace scag::support::prom {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back({"dtw.scalar_calls", 42});
  snap.counters.push_back({"scan.requests", 7});
  HistogramSample h;
  h.name = "scan.latency_ns";
  h.count = 6;
  h.sum_ns = 3000;
  h.min_ns = 100;
  h.max_ns = 2000;
  h.buckets.push_back({127, 1});
  h.buckets.push_back({1023, 2});
  h.buckets.push_back({2047, 3});
  snap.histograms.push_back(std::move(h));
  return snap;
}

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("dtw.dp_cells"), "scag_dtw_dp_cells");
  EXPECT_EQ(prometheus_name("fp.fired.batch.scan_target"),
            "scag_fp_fired_batch_scan_target");
  EXPECT_EQ(prometheus_name("weird-name:with spaces"),
            "scag_weird_name_with_spaces");
}

TEST(Prometheus, RenderedSnapshotIsValid004) {
  const std::string text = to_prometheus_text(sample_snapshot());
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(text, &error)) << error << "\n"
                                                      << text;
  // Counters carry the _total suffix and their value.
  EXPECT_NE(text.find("# TYPE scag_dtw_scalar_calls_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("scag_dtw_scalar_calls_total 42"), std::string::npos);
  // Histogram buckets are cumulative and closed by +Inf.
  EXPECT_NE(text.find("scag_scan_latency_ns_bucket{le=\"127\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("scag_scan_latency_ns_bucket{le=\"1023\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("scag_scan_latency_ns_bucket{le=\"2047\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("scag_scan_latency_ns_bucket{le=\"+Inf\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("scag_scan_latency_ns_sum 3000"), std::string::npos);
  EXPECT_NE(text.find("scag_scan_latency_ns_count 6"), std::string::npos);
}

TEST(Prometheus, ParserReadsBackValuesAndLabels) {
  const std::string text = to_prometheus_text(sample_snapshot());
  std::string error;
  const std::optional<PromText> parsed = parse_prometheus_text(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  double requests = -1.0, inf_bucket = -1.0;
  for (const PromSample& s : parsed->samples) {
    if (s.name == "scag_scan_requests_total") requests = s.value;
    if (s.name == "scag_scan_latency_ns_bucket" &&
        s.labels.at("le") == "+Inf")
      inf_bucket = s.value;
  }
  EXPECT_EQ(requests, 7.0);
  EXPECT_EQ(inf_bucket, 6.0);
  EXPECT_EQ(parsed->types.at("scag_scan_latency_ns"), "histogram");
}

TEST(Prometheus, ValidatorRejectsMalformedText) {
  std::string error;
  // Sample without a TYPE declaration.
  EXPECT_FALSE(validate_prometheus_text("orphan_metric 1\n", &error));
  // Unparseable value.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE m counter\nm not-a-number\n", &error));
  // Histogram not closed by +Inf.
  EXPECT_FALSE(validate_prometheus_text(
      "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n",
      &error));
  // Non-cumulative buckets.
  EXPECT_FALSE(validate_prometheus_text("# TYPE h histogram\n"
                                        "h_bucket{le=\"10\"} 5\n"
                                        "h_bucket{le=\"20\"} 3\n"
                                        "h_bucket{le=\"+Inf\"} 5\n"
                                        "h_sum 1\nh_count 5\n",
                                        &error));
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(validate_prometheus_text("# TYPE h histogram\n"
                                        "h_bucket{le=\"+Inf\"} 5\n"
                                        "h_sum 1\nh_count 4\n",
                                        &error));
  // Malformed labels.
  EXPECT_FALSE(validate_prometheus_text("# TYPE m counter\nm{le= 1\n",
                                        &error));
}

TEST(Prometheus, LiveRegistrySnapshotIsValid) {
  if (!Registry::compiled_in()) {
    // Empty snapshot renders as empty text, which is trivially valid.
    EXPECT_TRUE(validate_prometheus_text(
        to_prometheus_text(Registry::global().snapshot())));
    return;
  }
  Registry::global().counter("events.test_series").add(3);
  Registry::global().histogram("events.test_latency_ns").record_ns(1500);
  std::string error;
  const std::string text =
      to_prometheus_text(Registry::global().snapshot());
  EXPECT_TRUE(validate_prometheus_text(text, &error)) << error;
  EXPECT_NE(text.find("scag_events_test_series_total 3"), std::string::npos);
}

TEST(Prometheus, StatsServerServesSnapshotOverUnixSocket) {
  const std::string socket_path =
      (std::filesystem::temp_directory_path() / "scag_test_stats.sock")
          .string();
  const std::string body =
      "# TYPE scag_test_total counter\nscag_test_total 1\n";
  {
    StatsServer server(socket_path);
    std::thread server_thread(
        [&] { server.serve(2, [&] { return body; }); });
    // Two sequential clients: the listener must survive more than one
    // request (scagd will scrape it periodically).
    EXPECT_EQ(fetch_stats(socket_path), body);
    EXPECT_EQ(fetch_stats(socket_path), body);
    server_thread.join();
  }
  // The socket file is removed with the server.
  EXPECT_THROW(fetch_stats(socket_path), std::runtime_error);
}

TEST(Prometheus, StatsServerRejectsBadPaths) {
  EXPECT_THROW(StatsServer("/nonexistent-dir/stats.sock"),
               std::runtime_error);
  EXPECT_THROW(StatsServer(std::string(200, 'x')), std::runtime_error);
  EXPECT_THROW(fetch_stats("/nonexistent-dir/stats.sock"),
               std::runtime_error);
}

}  // namespace
}  // namespace scag::support::prom
