// Unit tests for the support library: RNG, statistics, strings, tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/table.h"

namespace scag {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, UniformInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformBadRangeThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(5, 4), std::invalid_argument);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::map<std::uint64_t, int> counts;
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(8)];
  for (const auto& [v, c] : counts) {
    (void)v;
    EXPECT_NEAR(c, n / 8, n / 80);  // within 10%
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, PickFromEmptyThrows) {
  Rng rng(19);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next() == child.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, GaussianMeanAndSpread) {
  Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(mean_of(xs), 5.0, 0.1);
  EXPECT_NEAR(stddev_of(xs), 2.0, 0.1);
}

// ---- stats -----------------------------------------------------------------

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean_of({}), 0.0); }

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean_of(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev_of(xs), 2.0);
}

TEST(Stats, SummarizeTracksMinMaxSum) {
  const Summary s = summarize({3.0, -1.0, 10.0});
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.min, -1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.sum, 12.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  EXPECT_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_EQ(pearson({1, 2}, {1, 2, 3}), 0.0);
}

TEST(Stats, F1Score) {
  EXPECT_DOUBLE_EQ(f1_score(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(f1_score(0.0, 0.0), 0.0);
  EXPECT_NEAR(f1_score(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

// ---- strings ---------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsSkipsRuns) {
  const auto parts = split_ws("  mov   rax,  rbx \t ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "mov");
  EXPECT_EQ(parts[1], "rax,");
  EXPECT_EQ(parts[2], "rbx");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("MoV RaX"), "mov rax");
  EXPECT_TRUE(starts_with("clflush [rax]", "clflush"));
  EXPECT_FALSE(starts_with("cl", "clflush"));
}

TEST(Strings, StrfmtAndPct) {
  EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(pct(0.9664), "96.64%");
  EXPECT_EQ(pct(0.0), "0.00%");
}

// ---- Table -----------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t("TITLE");
  t.header({"A", "Long header"});
  t.row({"xx", "y"});
  const std::string out = t.render();
  EXPECT_NE(out.find("TITLE"), std::string::npos);
  EXPECT_NE(out.find("| A "), std::string::npos);
  EXPECT_NE(out.find("Long header"), std::string::npos);
  std::size_t width = 0;
  for (const auto& line : split(out, '\n')) {
    if (line.empty() || line == "TITLE") continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << out;
  }
}

TEST(Table, HandlesRaggedRows) {
  Table t;
  t.header({"a", "b", "c"});
  t.row({"1"});
  t.separator();
  t.row({"1", "2", "3"});
  EXPECT_NO_THROW(t.render());
}

}  // namespace
}  // namespace scag
