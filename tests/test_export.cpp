// Tests for the assembly exporter: round-trip through the assembler must
// reproduce the program exactly, for hand-written programs, every attack
// PoC, and randomly generated programs.
#include <gtest/gtest.h>

#include "attacks/registry.h"
#include "isa/assembler.h"
#include "isa/builder.h"
#include "isa/export.h"
#include "isa/random_program.h"

namespace scag::isa {
namespace {

void expect_equivalent(const Program& a, const Program& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.entry(), b.entry());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a.at(i), b.at(i)) << "instruction " << i;
  EXPECT_EQ(a.initial_data(), b.initial_data());
}

TEST(Export, RoundTripSimpleProgram) {
  const Program original = assemble(R"(
      .word 0x9000 17
      .entry main
      helper:
        mov rax, [rbx+rcx*4+-16]
        ret
      main:
        mov rbx, 0x9000
        mov rcx, 4
        call helper
        loop:
        dec rcx
        jne loop
        hlt
  )");
  const Program round = assemble(export_assembly(original));
  expect_equivalent(original, round);
}

TEST(Export, PreservesUserLabels) {
  const Program p = assemble("main:\nnop\njmp main\n.entry main\n");
  const std::string text = export_assembly(p);
  EXPECT_NE(text.find("main:"), std::string::npos);
  EXPECT_NE(text.find("jmp main"), std::string::npos);
}

class PocExportRoundTrip
    : public ::testing::TestWithParam<attacks::PocSpec> {};

TEST_P(PocExportRoundTrip, ReassemblesIdentically) {
  const Program poc = GetParam().build(attacks::PocConfig{});
  const Program round = assemble(export_assembly(poc), poc.name());
  expect_equivalent(poc, round);
}

INSTANTIATE_TEST_SUITE_P(AllPocs, PocExportRoundTrip,
                         ::testing::ValuesIn(attacks::all_pocs()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (char& c : n)
                             if (c == '-' || c == '+') c = '_';
                           return n;
                         });

TEST(Export, RoundTripRandomPrograms) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Program original = random_program(rng);
    const Program round = assemble(export_assembly(original));
    ASSERT_EQ(original.size(), round.size()) << "seed " << seed;
    for (std::size_t i = 0; i < original.size(); ++i)
      ASSERT_EQ(original.at(i), round.at(i))
          << "seed " << seed << " instruction " << i;
  }
}

TEST(Export, OptionsControlComments) {
  ProgramBuilder b("t");
  b.mark_relevant(true);
  b.clflush(mem(Reg::RAX));
  b.mark_relevant(false);
  b.hlt();
  const Program p = b.build();

  ExportOptions plain;
  EXPECT_EQ(export_assembly(p, plain).find("attack-relevant"),
            std::string::npos);

  ExportOptions annotated;
  annotated.relevance_comments = true;
  annotated.address_comments = true;
  const std::string text = export_assembly(p, annotated);
  EXPECT_NE(text.find("attack-relevant"), std::string::npos);
  EXPECT_NE(text.find("; 0x"), std::string::npos);
}

TEST(Export, DataCanBeOmitted) {
  ProgramBuilder b("t");
  b.data_word(0x5000, 9);
  b.hlt();
  const Program p = b.build();
  ExportOptions no_data;
  no_data.include_data = false;
  EXPECT_EQ(export_assembly(p, no_data).find(".word"), std::string::npos);
  EXPECT_NE(export_assembly(p).find(".word"), std::string::npos);
}

}  // namespace
}  // namespace scag::isa
