// Suite for the zero-copy model store (core/store.h, scag-store-v1).
//
// Four concerns:
//   - Fidelity: pack -> unpack round-trips the text format bit-exactly
//     (asserted through save_models_to_string equality), packing is
//     byte-deterministic, and pack(unpack(bytes)) == bytes.
//   - Equivalence: a store-backed Detector produces Detections
//     bit-identical to the text-enrolled one on every scan path — the
//     run_store_differential_matrix harness sweeps serial/batch, both
//     kernels, scalar/SIMD DPs, index on/off, threads {1, 2, 8}.
//   - Shard stability: appending one family's new mutant re-emits only
//     that family's shard; every other shard stays byte-identical
//     (checksums compare equal), which is the incremental-update story.
//   - Hostility: a mutated, truncated, or version-bumped store image is
//     rejected with StoreError at open — every rejection path in the
//     validator battery below, plus the seed-replayable FuzzStore case in
//     test_fuzz.cpp — and never crashes or attaches.
#include <gtest/gtest.h>

#include "differential_scan.h"
#include "seed_util.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "core/serialize.h"
#include "core/store.h"
#include "mutation/mutator.h"
#include "support/rng.h"

namespace scag::core {
namespace {

/// One representative PoC per attack family plus a mutant — small enough
/// to pack in microseconds, rich enough to cover all four shards and the
/// dedup/token sharing paths.
std::vector<AttackModel> corpus_models() {
  const ModelBuilder builder;
  const attacks::PocConfig poc;
  std::vector<AttackModel> models;
  for (const char* name :
       {"FR-IAIK", "PP-IAIK", "Spectre-FR-Ideal", "Spectre-PP-Trippel"}) {
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    models.push_back(builder.build(spec.build(poc), spec.family));
    models.back().name = name;
  }
  Rng rng(11);
  models.push_back(
      builder.build(mutation::mutate(attacks::fr_iaik(poc), rng),
                    Family::kFlushReload));
  models.back().name = "FR-IAIK-mut";
  return models;
}

Detector enrolled_detector(const std::vector<AttackModel>& models,
                           double threshold = 0.45) {
  Detector detector(ModelConfig{}, calibrated_dtw_config(), threshold);
  for (const AttackModel& m : models) detector.enroll(m);
  return detector;
}

std::vector<CstBbs> corpus_targets() {
  const ModelBuilder builder;
  const attacks::PocConfig poc;
  std::vector<CstBbs> targets;
  for (const char* name : {"FR-IAIK", "PP-Jzhang"})
    targets.push_back(
        builder.build(attacks::poc_by_name(name).build(poc)).sequence);
  Rng benign_rng(99);
  targets.push_back(builder.build(benign::aes_ttables(benign_rng)).sequence);
  targets.push_back(CstBbs{});
  return targets;
}

DistanceConfig scan_distance() { return calibrated_dtw_config().distance; }

// ---------------------------------------------------------------------------
// Fidelity

TEST(StoreRoundTrip, UnpackReproducesTextFormBitExactly) {
  const std::vector<AttackModel> models = corpus_models();
  const std::vector<std::uint8_t> bytes =
      pack_store_bytes(models, scan_distance());
  StoreOptions opts;
  opts.verify_checksums = true;
  const auto store = ModelStore::from_bytes(bytes, opts);
  ASSERT_EQ(store->num_models(), models.size());
  // The text serializer writes floats as exact bit patterns, so string
  // equality of the serialized forms IS bit equality of the models.
  EXPECT_EQ(save_models_to_string(store->unpack()),
            save_models_to_string(models));
  for (std::size_t j = 0; j < models.size(); ++j) {
    EXPECT_EQ(store->model_name(j), models[j].name);
    EXPECT_EQ(store->model_family(j), models[j].family);
  }
}

TEST(StoreRoundTrip, PackIsByteDeterministicAndIdempotent) {
  const std::vector<AttackModel> models = corpus_models();
  const std::vector<std::uint8_t> once =
      pack_store_bytes(models, scan_distance());
  const std::vector<std::uint8_t> twice =
      pack_store_bytes(models, scan_distance());
  EXPECT_EQ(once, twice) << "packing the same corpus twice diverged";
  const auto store = ModelStore::from_bytes(once);
  EXPECT_EQ(pack_store_bytes(store->unpack(), scan_distance()), once)
      << "pack(unpack(bytes)) != bytes";
}

TEST(StoreRoundTrip, BothAlphabetsRoundTrip) {
  const std::vector<AttackModel> models = corpus_models();
  for (IsAlphabet alphabet :
       {IsAlphabet::kFullTokens, IsAlphabet::kSemanticWeighted}) {
    DistanceConfig dc;
    dc.alphabet = alphabet;
    const auto store = ModelStore::from_bytes(pack_store_bytes(models, dc));
    EXPECT_EQ(store->alphabet(), alphabet);
    EXPECT_EQ(save_models_to_string(store->unpack()),
              save_models_to_string(models));
  }
}

TEST(StoreRoundTrip, EmptyRepositoryPacks) {
  const auto store =
      ModelStore::from_bytes(pack_store_bytes({}, scan_distance()));
  EXPECT_EQ(store->num_models(), 0u);
  EXPECT_TRUE(store->unpack().empty());
  EXPECT_EQ(store->info().shard_count, 0u);
}

TEST(StoreRoundTrip, PackRejectsBadInputs) {
  std::vector<AttackModel> dup = corpus_models();
  dup[1].name = dup[0].name;
  EXPECT_THROW(pack_store_bytes(dup, scan_distance()), StoreError);
  std::vector<AttackModel> bad_family = corpus_models();
  bad_family[0].family = Family::kCount;
  EXPECT_THROW(pack_store_bytes(bad_family, scan_distance()), StoreError);
}

// ---------------------------------------------------------------------------
// Shard stability (the incremental-update story)

TEST(StoreShards, AppendingAMutantLeavesOtherShardsByteIdentical) {
  std::vector<AttackModel> models = corpus_models();
  const auto before = ModelStore::from_bytes(
      pack_store_bytes(models, scan_distance()));

  const ModelBuilder builder;
  Rng rng(23);
  models.push_back(
      builder.build(mutation::mutate(attacks::fr_iaik(attacks::PocConfig{}),
                                     rng),
                    Family::kFlushReload));
  models.back().name = "FR-IAIK-mut2";
  const auto after =
      ModelStore::from_bytes(pack_store_bytes(models, scan_distance()));

  // The new model only touches the FlushReload shard; every other
  // family's shard payload must hash identically (global token/dedup ids
  // are first-occurrence in enrollment order, so an append cannot
  // renumber anything that came before it).
  int compared = 0;
  for (const StoreSectionInfo& b : before->info().sections) {
    if (b.name != "shard" || b.shard_family == Family::kFlushReload) continue;
    for (const StoreSectionInfo& a : after->info().sections) {
      if (a.name != "shard" || a.shard_family != b.shard_family) continue;
      EXPECT_EQ(a.checksum, b.checksum)
          << "shard " << family_name(b.shard_family)
          << " re-emitted by an unrelated append";
      EXPECT_EQ(a.bytes, b.bytes);
      ++compared;
    }
  }
  EXPECT_EQ(compared, 3) << "expected three untouched family shards";
}

// ---------------------------------------------------------------------------
// Equivalence: the tentpole invariant

TEST(StoreDifferential, StoreBackedScansMatchTextLoadedBitExactly) {
  const std::vector<AttackModel> models = corpus_models();
  const std::vector<CstBbs> targets = corpus_targets();
  for (double threshold : {0.2, 0.45, 0.7}) {
    const Detector detector = enrolled_detector(models, threshold);
    testutil::run_store_differential_matrix(
        detector, targets, "threshold" + std::to_string(threshold));
  }
}

TEST(StoreDifferential, ScanIndexLoadMatchesSequentialAdds) {
  const std::vector<AttackModel> models = corpus_models();
  const Detector detector = enrolled_detector(models);
  const Detector twin = testutil::store_backed_clone(detector);
  // Same scan_order for every target: the bulk-loaded index (precomputed
  // triage vectors from the store) must equal the sequentially grown one.
  const DistanceConfig dc = scan_distance();
  for (const CstBbs& t : corpus_targets()) {
    const SequenceFeatures tf = compute_sequence_features(t, dc);
    EXPECT_EQ(detector.scan_index().scan_order(tf, t.size()),
              twin.scan_index().scan_order(tf, t.size()));
  }
}

// ---------------------------------------------------------------------------
// Lifetime and freeze semantics

TEST(StoreSemantics, AttachKeepsTheImageAlive) {
  const std::vector<AttackModel> models = corpus_models();
  Detector twin(ModelConfig{}, calibrated_dtw_config(), 0.45);
  {
    // The only handle to the store goes out of scope; the detector's
    // shared_ptr must keep the image (and every view into it) valid.
    auto store = ModelStore::from_bytes(
        pack_store_bytes(models, scan_distance()));
    twin.attach_store(std::move(store));
  }
  const Detector text = enrolled_detector(models);
  for (const CstBbs& t : corpus_targets()) {
    const Detection oracle = testutil::exhaustive_oracle(text, t);
    testutil::expect_detection_equivalent(oracle, twin.scan(t),
                                          "attach-keeps-alive");
  }
}

TEST(StoreSemantics, StoreBackedDetectorIsFrozen) {
  std::vector<AttackModel> models = corpus_models();
  Detector twin(ModelConfig{}, calibrated_dtw_config(), 0.45);
  twin.attach_store(
      ModelStore::from_bytes(pack_store_bytes(models, scan_distance())));
  EXPECT_TRUE(twin.store_backed());
  EXPECT_THROW(twin.enroll(models[0]), std::logic_error);
  // Attach is single-shot and requires an empty detector.
  EXPECT_THROW(twin.attach_store(ModelStore::from_bytes(
                   pack_store_bytes(models, scan_distance()))),
               std::logic_error);
  Detector enrolled = enrolled_detector(models);
  EXPECT_THROW(enrolled.attach_store(ModelStore::from_bytes(
                   pack_store_bytes(models, scan_distance()))),
               std::logic_error);
}

TEST(StoreSemantics, AlphabetMismatchIsRejected) {
  DistanceConfig other;
  other.alphabet = calibrated_dtw_config().distance.alphabet ==
                           IsAlphabet::kFullTokens
                       ? IsAlphabet::kSemanticWeighted
                       : IsAlphabet::kFullTokens;
  const auto store =
      ModelStore::from_bytes(pack_store_bytes(corpus_models(), other));
  Detector detector(ModelConfig{}, calibrated_dtw_config(), 0.45);
  EXPECT_THROW(detector.attach_store(store), StoreError);
}

TEST(StoreSemantics, MmapOpenMatchesFromBytes) {
  namespace fs = std::filesystem;
  const std::vector<AttackModel> models = corpus_models();
  const std::vector<std::uint8_t> bytes =
      pack_store_bytes(models, scan_distance());
  const fs::path path =
      fs::temp_directory_path() / "scag_test_store_mmap.store";
  pack_store(path.string(), models, scan_distance());
  StoreOptions opts;
  opts.verify_checksums = true;
  const auto mapped = ModelStore::open(path.string(), opts);
  EXPECT_TRUE(mapped->mapped());
  EXPECT_TRUE(mapped->info().checksums_verified);
  // The file written by pack_store is the same image from_bytes saw.
  std::ifstream in(path, std::ios::binary);
  const std::vector<std::uint8_t> disk(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(disk, bytes);
  EXPECT_EQ(save_models_to_string(mapped->unpack()),
            save_models_to_string(models));

  // And a detector scanning out of the real mapping matches the oracle.
  Detector twin(ModelConfig{}, calibrated_dtw_config(), 0.45);
  twin.attach_store(mapped);
  const Detector text = enrolled_detector(models);
  for (const CstBbs& t : corpus_targets())
    testutil::expect_detection_equivalent(testutil::exhaustive_oracle(text, t),
                                          twin.scan(t), "mmap-scan");
  fs::remove(path);
}

TEST(StoreSemantics, IsStoreFileSniffsTheMagic) {
  namespace fs = std::filesystem;
  const fs::path store_path =
      fs::temp_directory_path() / "scag_test_store_sniff.store";
  const fs::path text_path =
      fs::temp_directory_path() / "scag_test_store_sniff.repo";
  pack_store(store_path.string(), corpus_models(), scan_distance());
  save_models_to_file(text_path.string(), corpus_models());
  EXPECT_TRUE(is_store_file(store_path.string()));
  EXPECT_FALSE(is_store_file(text_path.string()));
  EXPECT_FALSE(is_store_file((store_path / "nope").string()));
  fs::remove(store_path);
  fs::remove(text_path);
}

// ---------------------------------------------------------------------------
// Hostile input: every rejection path, by targeted mutation

using Mutator = void (*)(std::vector<std::uint8_t>&);

void expect_rejected(std::vector<std::uint8_t> bytes, const char* what) {
  EXPECT_THROW(ModelStore::from_bytes(std::move(bytes)), StoreError) << what;
}

TEST(StoreHostile, RejectsTruncationsAtEveryBoundary) {
  const std::vector<std::uint8_t> bytes =
      pack_store_bytes(corpus_models(), scan_distance());
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{63}, std::size_t{64},
        std::size_t{200}, bytes.size() / 2, bytes.size() - 1}) {
    expect_rejected({bytes.begin(), bytes.begin() + keep}, "truncation");
  }
  // Extension is equally invalid: file_bytes no longer matches.
  std::vector<std::uint8_t> extended = bytes;
  extended.push_back(0);
  expect_rejected(std::move(extended), "extension");
}

TEST(StoreHostile, RejectsHeaderCorruption) {
  const std::vector<std::uint8_t> base =
      pack_store_bytes(corpus_models(), scan_distance());
  // XOR so the byte is guaranteed to change whatever its current value.
  const auto mutated = [&](std::size_t at, std::uint8_t flip) {
    std::vector<std::uint8_t> b = base;
    b[at] ^= flip;
    return b;
  };
  expect_rejected(mutated(0, 'X'), "bad magic");
  expect_rejected(mutated(8, 99), "future version");
  expect_rejected(mutated(12, 0xAA), "endianness probe");
  expect_rejected(mutated(16, 0xAA), "double-layout probe");
  expect_rejected(mutated(24, 9), "unknown alphabet");
  expect_rejected(mutated(32, 0x01), "file size mismatch");
  expect_rejected(mutated(48, 0xEE), "model count mismatch");
  expect_rejected(mutated(56, 0x01), "header checksum");
}

TEST(StoreHostile, RejectsSectionTableAbuse) {
  const std::vector<std::uint8_t> base =
      pack_store_bytes(corpus_models(), scan_distance());
  // Section records start at byte 64: {kind u32, family u32, offset u64,
  // bytes u64, checksum u64}. The header checksum only covers the first
  // 56 bytes, so the section table is attacker-controlled unless
  // validated field by field.
  const auto patched = [&](std::size_t rec, std::size_t field_off,
                           std::uint64_t value) {
    std::vector<std::uint8_t> b = base;
    std::memcpy(b.data() + 64 + 32 * rec + field_off, &value, 8);
    return b;
  };
  expect_rejected(patched(0, 8, 1u << 30), "offset past the file");
  expect_rejected(patched(0, 16, 1u << 30), "length past the file");
  expect_rejected(patched(0, 8, 96), "misaligned section offset");
  {
    // Point section 1 at section 0's range: overlap.
    std::vector<std::uint8_t> b = base;
    std::memcpy(b.data() + 64 + 32 + 8, b.data() + 64 + 8, 16);
    expect_rejected(std::move(b), "overlapping sections");
  }
  {
    std::vector<std::uint8_t> b = base;
    const std::uint32_t bad_kind = 77;
    std::memcpy(b.data() + 64, &bad_kind, 4);
    expect_rejected(std::move(b), "unknown section kind");
  }
  {
    // Turn the norm-strings section into a second shard: both "missing
    // global section" and "shard family" trip.
    std::vector<std::uint8_t> b = base;
    const std::uint32_t shard_kind = 5;
    std::memcpy(b.data() + 64, &shard_kind, 4);
    expect_rejected(std::move(b), "missing global section");
  }
}

TEST(StoreHostile, RejectsPayloadCorruptionUnderChecksums) {
  const std::vector<std::uint8_t> base =
      pack_store_bytes(corpus_models(), scan_distance());
  // Flip the final byte INSIDE a section payload — the file's last bytes
  // can be alignment padding that no checksum covers.
  std::uint64_t last_end = 0;
  for (const StoreSectionInfo& s :
       ModelStore::from_bytes(base)->info().sections)
    last_end = std::max(last_end, s.offset + s.bytes);
  ASSERT_GT(last_end, 0u);
  std::vector<std::uint8_t> b = base;
  b[last_end - 1] ^= 0xFF;
  StoreOptions verify;
  verify.verify_checksums = true;
  EXPECT_THROW(ModelStore::from_bytes(std::move(b), verify), StoreError)
      << "checksum pass must catch payload bit-flips";
}

TEST(StoreHostile, RejectsNonFiniteTriageFeatures) {
  // NaN triage features would reach std::sort comparators in ScanIndex —
  // structural validation must reject them even without checksum
  // verification. A shard's triage array is its final field, so the last
  // 8 bytes of the highest-offset shard section are one triage double.
  const std::vector<std::uint8_t> base =
      pack_store_bytes(corpus_models(), scan_distance());
  const auto store = ModelStore::from_bytes(base);
  std::uint64_t last_off = 0, last_bytes = 0;
  for (const StoreSectionInfo& s : store->info().sections)
    if (s.name == "shard" && s.offset > last_off) {
      last_off = s.offset;
      last_bytes = s.bytes;
    }
  ASSERT_GT(last_bytes, 8u);
  std::vector<std::uint8_t> b = base;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(b.data() + last_off + last_bytes - 8, &nan, 8);
  expect_rejected(std::move(b), "NaN triage feature");
}

TEST(StoreHostile, OpenRejectsMissingAndTextFiles) {
  namespace fs = std::filesystem;
  EXPECT_THROW(ModelStore::open((fs::temp_directory_path() /
                                 "scag_no_such_store.store").string()),
               StoreError);
  const fs::path text_path =
      fs::temp_directory_path() / "scag_test_store_notastore.repo";
  save_models_to_file(text_path.string(), corpus_models());
  EXPECT_THROW(ModelStore::open(text_path.string()), StoreError);
  fs::remove(text_path);
}

}  // namespace
}  // namespace scag::core
