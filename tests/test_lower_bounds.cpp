// Property suite for the admissible DTW lower bounds (core/dtw.h), the
// foundation the scan cascade (core/scan_index.h) stands on.
//
// The cascade prunes a model the moment a bound exceeds the running
// cutoff, so every guarantee it makes reduces to one property chain,
// checked here the hard way (EXPECT_LE / EXPECT_EQ on raw doubles, never
// EXPECT_NEAR):
//
//   cst_bbs_distance_lower_bound_kim    O(1)    endpoints only
//     <= cst_bbs_distance_lower_bound   O(n+m)  + feature envelopes
//     <= cst_bbs_distance               O(n*m)  exact DP
//
// bit-exactly, over every pair of a corpus produced by the real modeling
// pipeline (attack PoCs, benign templates, mutated variants, seeded
// random programs), plus hand-built hostile sequences and the empty
// sequence, across every DTW configuration axis the property suite uses
// (both alphabets, both normalizations, banded windows, length penalty).
// The compiled twins (core/compiled.h) must agree with the string bounds
// bit for bit, and the bounds must inherit the distance's symmetry.
#include <gtest/gtest.h>

#include "seed_util.h"

#include <cstddef>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/compiled.h"
#include "core/dtw.h"
#include "core/model.h"
#include "isa/random_program.h"
#include "mutation/mutator.h"
#include "support/rng.h"

namespace scag::core {
namespace {

/// Same axes as tests/test_dtw_properties.cpp: paper-literal, calibrated,
/// banded, accumulated with penalty, path-averaged full tokens.
std::vector<DtwConfig> bound_configs() {
  std::vector<DtwConfig> configs;
  configs.push_back(DtwConfig{});
  configs.push_back(calibrated_dtw_config());

  DtwConfig banded = calibrated_dtw_config();
  banded.window = 2;
  configs.push_back(banded);

  DtwConfig accumulated;
  accumulated.window = 3;
  accumulated.length_penalty = 0.5;
  configs.push_back(accumulated);

  DtwConfig averaged;
  averaged.normalization = DtwNormalization::kPathAveraged;
  averaged.cost_scale = 2.0;
  configs.push_back(averaged);
  return configs;
}

/// Hand-built blocks with tokens the modeling pipeline never emits (the
/// shape a hostile or newer-format deserialized target could take).
CstBbs hostile_sequence() {
  CstBbs s;
  CstBbsElement e1;
  e1.norm_instrs = {"alien op1, op2", "mov reg, mem", "alien op1, op2"};
  e1.sem_tokens = {"unknowable", "load", "unknowable"};
  e1.cst.after.ao = 3;
  s.push_back(e1);
  CstBbsElement e2;
  e2.norm_instrs = {"mov reg, mem"};
  e2.sem_tokens = {"load"};
  e2.cst.after.io = 5;
  s.push_back(e2);
  s.push_back(e1);
  return s;
}

class LowerBounds : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::vector<CstBbs>();
    const ModelBuilder builder;
    const attacks::PocConfig poc;
    corpus_->push_back(builder.build(attacks::fr_iaik(poc)).sequence);
    corpus_->push_back(builder.build(attacks::pp_iaik(poc)).sequence);
    corpus_->push_back(builder.build(attacks::spectre_fr_ideal(poc)).sequence);
    Rng benign_rng(99);
    corpus_->push_back(
        builder.build(benign::aes_ttables(benign_rng)).sequence);
    Rng mut_rng(7);
    corpus_->push_back(
        builder.build(mutation::mutate(attacks::fr_iaik(poc), mut_rng))
            .sequence);
    corpus_seed_ = testutil::test_seed(1234);
    Rng rng(corpus_seed_);
    for (int k = 0; k < 3; ++k) {
      Rng gen = rng.split();
      isa::RandomProgramOptions options;
      options.statements = 20 + 10 * k;
      corpus_->push_back(
          builder.build(isa::random_program(gen, options)).sequence);
    }
    corpus_->push_back(CstBbs{});
    CstBbs single;
    single.push_back(hostile_sequence().front());
    corpus_->push_back(single);  // degenerate length 1
    corpus_->push_back(hostile_sequence());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::vector<CstBbs>* corpus_;
  static std::uint64_t corpus_seed_;
  ::testing::ScopedTrace seed_trace_{__FILE__, __LINE__,
                                     testutil::seed_note(corpus_seed_)};
};

std::vector<CstBbs>* LowerBounds::corpus_ = nullptr;
std::uint64_t LowerBounds::corpus_seed_ = 0;

/// The headline chain: kim <= full bound <= exact distance, every pair,
/// every config, compared as raw doubles.
TEST_F(LowerBounds, TightnessOrderingHoldsBitExactly) {
  std::size_t config_index = 0;
  for (const DtwConfig& config : bound_configs()) {
    SCOPED_TRACE("config " + std::to_string(config_index++));
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        SCOPED_TRACE("pair (" + std::to_string(i) + ", " + std::to_string(j) +
                     ")");
        const CstBbs& a = (*corpus_)[i];
        const CstBbs& b = (*corpus_)[j];
        const double kim = cst_bbs_distance_lower_bound_kim(a, b, config);
        const double full = cst_bbs_distance_lower_bound(a, b, config);
        const double exact = cst_bbs_distance(a, b, config);
        EXPECT_LE(kim, full);
        EXPECT_LE(full, exact);
      }
    }
  }
}

/// The precomputed-features overload must be bit-identical to the
/// two-argument overload (it is what the batch scanner and the cascade
/// actually call).
TEST_F(LowerBounds, FeatureOverloadIsBitIdentical) {
  for (const DtwConfig& config : bound_configs()) {
    std::vector<SequenceFeatures> features;
    features.reserve(corpus_->size());
    for (const CstBbs& s : *corpus_)
      features.push_back(compute_sequence_features(s, config.distance));
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        const double plain =
            cst_bbs_distance_lower_bound((*corpus_)[i], (*corpus_)[j], config);
        const double precomputed = cst_bbs_distance_lower_bound(
            (*corpus_)[i], (*corpus_)[j], features[i], features[j], config);
        EXPECT_EQ(plain, precomputed)
            << "pair (" << i << ", " << j << ")";
      }
    }
  }
}

/// Both bounds inherit the exact distance's symmetry bit for bit.
TEST_F(LowerBounds, BoundsAreSymmetric) {
  for (const DtwConfig& config : bound_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = i; j < corpus_->size(); ++j) {
        const CstBbs& a = (*corpus_)[i];
        const CstBbs& b = (*corpus_)[j];
        EXPECT_EQ(cst_bbs_distance_lower_bound_kim(a, b, config),
                  cst_bbs_distance_lower_bound_kim(b, a, config))
            << "kim pair (" << i << ", " << j << ")";
        EXPECT_EQ(cst_bbs_distance_lower_bound(a, b, config),
                  cst_bbs_distance_lower_bound(b, a, config))
            << "full pair (" << i << ", " << j << ")";
      }
    }
  }
}

/// Degenerate shapes: against the empty sequence every bound collapses to
/// the exact distance (the empty-sequence convention has a single possible
/// alignment); a self-comparison's bounds never exceed the self-distance.
TEST_F(LowerBounds, DegenerateLengthsCollapseToExact) {
  const CstBbs empty;
  for (const DtwConfig& config : bound_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      const CstBbs& s = (*corpus_)[i];
      const double exact = cst_bbs_distance(s, empty, config);
      EXPECT_EQ(cst_bbs_distance_lower_bound_kim(s, empty, config), exact)
          << "kim vs empty, seq " << i;
      EXPECT_EQ(cst_bbs_distance_lower_bound_kim(empty, s, config), exact)
          << "kim empty vs, seq " << i;
      const double self = cst_bbs_distance(s, s, config);
      EXPECT_LE(cst_bbs_distance_lower_bound_kim(s, s, config), self)
          << "kim self, seq " << i;
      EXPECT_LE(cst_bbs_distance_lower_bound(s, s, config), self)
          << "full self, seq " << i;
    }
  }
}

/// The compiled kim bound (core/compiled.h) is bit-identical to the
/// string kim bound for every (target, model) pair, memoized or not —
/// the cascade's stage decisions must not depend on the kernel.
TEST_F(LowerBounds, CompiledKimBoundMatchesStringKernel) {
  for (const DtwConfig& config : bound_configs()) {
    CompiledRepository repo(config.distance);
    for (const CstBbs& s : *corpus_) repo.add(s);
    for (std::size_t t = 0; t < corpus_->size(); ++t) {
      const CompiledTarget target = repo.compile_target((*corpus_)[t]);
      ElementDistanceMemo memo(target.unique_elements, repo.unique_elements());
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        const double compiled = compiled_cst_bbs_distance_lower_bound_kim(
            target, repo, j, memo, config, nullptr);
        const double reference = cst_bbs_distance_lower_bound_kim(
            (*corpus_)[t], (*corpus_)[j], config);
        EXPECT_EQ(compiled, reference) << "pair (" << t << ", " << j << ")";
      }
    }
  }
}

/// Similarity-side consistency: the upper bound derived from the full
/// lower bound can never fall below the exact similarity, so a cascade
/// cutoff above the upper bound proves the exact score is below it too.
TEST_F(LowerBounds, SimilarityUpperBoundDominatesExactScore) {
  for (const DtwConfig& config : bound_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        EXPECT_GE(similarity_upper_bound((*corpus_)[i], (*corpus_)[j], config),
                  similarity((*corpus_)[i], (*corpus_)[j], config))
            << "pair (" << i << ", " << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace scag::core
