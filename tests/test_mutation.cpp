// Tests for the mutation/obfuscation engine: semantic preservation on
// every attack PoC, BB growth under obfuscation, structural invariants.
#include <gtest/gtest.h>

#include "seed_util.h"

#include "attacks/registry.h"
#include "cfg/cfg.h"
#include "cpu/interpreter.h"
#include "isa/assembler.h"
#include "mutation/mutator.h"

namespace scag::mutation {
namespace {

using attacks::PocConfig;
using attacks::PocSpec;

std::uint64_t recover(const isa::Program& p, const PocConfig& config) {
  cpu::Interpreter interp;
  return interp.run(p).memory.read(config.layout.recovered_addr);
}

// ---- Semantic preservation across all PoCs ------------------------------------

class MutationPreservesAttack : public ::testing::TestWithParam<PocSpec> {};

TEST_P(MutationPreservesAttack, MutantsStillRecoverSecret) {
  const std::uint64_t seed = testutil::test_seed(4242);
  SCOPED_TRACE(testutil::seed_note(seed));
  Rng rng(seed);
  int working = 0;
  const int trials = 12;
  for (int k = 0; k < trials; ++k) {
    PocConfig config;
    config.secret = 1 + rng.below(15);
    const isa::Program poc = GetParam().build(config);
    Rng mut_rng = rng.split();
    const isa::Program mutant = mutate(poc, mut_rng);
    EXPECT_NO_THROW(mutant.validate());
    working += recover(mutant, config) == config.secret;
  }
  // Mutation may rarely disturb a timing threshold; the dataset generator
  // validates-and-retries. Here we require a high success rate.
  EXPECT_GE(working, trials - 2) << GetParam().name;
}

TEST_P(MutationPreservesAttack, ObfuscationPreservesAttackMostly) {
  const std::uint64_t seed = testutil::test_seed(777);
  SCOPED_TRACE(testutil::seed_note(seed));
  Rng rng(seed);
  PocConfig config;
  config.secret = 9;
  int working = 0;
  const int trials = 6;
  for (int k = 0; k < trials; ++k) {
    const isa::Program poc = GetParam().build(config);
    Rng mut_rng = rng.split();
    const isa::Program obf = obfuscate(poc, mut_rng);
    working += recover(obf, config) == config.secret;
  }
  EXPECT_GE(working, trials - 2) << GetParam().name;
}

std::string poc_name(const ::testing::TestParamInfo<PocSpec>& info) {
  std::string n = info.param.name;
  for (char& c : n)
    if (c == '-' || c == '+') c = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllPocs, MutationPreservesAttack,
                         ::testing::ValuesIn(attacks::all_pocs()), poc_name);

// ---- Structural properties ------------------------------------------------------

TEST(Obfuscation, GrowsBasicBlocksRoughlySeventyPercent) {
  // The paper reports +70.49% BBs per obfuscated sample on average.
  Rng rng(31);
  double total_growth = 0.0;
  int n = 0;
  for (const PocSpec& spec : attacks::all_pocs()) {
    const isa::Program poc = spec.build(PocConfig{});
    const isa::Program obf = obfuscate(poc, rng);
    const auto before = cfg::Cfg::build(poc).num_blocks();
    const auto after = cfg::Cfg::build(obf).num_blocks();
    total_growth += static_cast<double>(after) / static_cast<double>(before) - 1.0;
    ++n;
  }
  const double avg = total_growth / n;
  EXPECT_GT(avg, 0.5);
  EXPECT_LT(avg, 1.2);
}

TEST(Mutation, PreservesGroundTruthMarkCount) {
  Rng rng(53);
  const isa::Program poc = attacks::poc_by_name("FR-IAIK").build(PocConfig{});
  const isa::Program mut = mutate(poc, rng);
  // Junk is never marked; every original mark survives (possibly at a new
  // address).
  EXPECT_EQ(mut.relevant_marks().size(), poc.relevant_marks().size());
}

TEST(Mutation, RenamesRegistersConsistently) {
  // A toy program whose output is register-permutation invariant.
  const isa::Program p = isa::assemble(R"(
      mov rax, 5
      mov rbx, 7
      imul rax, rbx
      mov [0x10000], rax
      hlt
  )");
  MutationConfig config;
  config.reg_rename_prob = 1.0;
  config.subst_prob = 0.0;
  config.swap_prob = 0.0;
  config.junk_snippets = 0;
  config.dead_blocks = 0;
  Rng rng(61);
  const isa::Program mut = mutate(p, rng, config);
  cpu::Interpreter interp;
  EXPECT_EQ(interp.run(mut).memory.read(0x10000), 35u);
}

TEST(Mutation, SubstitutionsPreserveDecJneLoops) {
  const isa::Program p = isa::assemble(R"(
      mov rcx, 20
      mov rax, 0
      loop:
      inc rax
      dec rcx
      jne loop
      mov [0x20000], rax
      hlt
  )");
  MutationConfig config;
  config.reg_rename_prob = 0.0;
  config.subst_prob = 1.0;
  config.swap_prob = 0.0;
  config.junk_snippets = 0;
  config.dead_blocks = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const isa::Program mut = mutate(p, rng, config);
    cpu::Interpreter interp;
    EXPECT_EQ(interp.run(mut).memory.read(0x20000), 20u) << "seed " << seed;
  }
}

TEST(Mutation, DeterministicForSameSeed) {
  const isa::Program poc = attacks::poc_by_name("PP-IAIK").build(PocConfig{});
  Rng a(99), b(99);
  const isa::Program m1 = mutate(poc, a);
  const isa::Program m2 = mutate(poc, b);
  ASSERT_EQ(m1.size(), m2.size());
  for (std::size_t i = 0; i < m1.size(); ++i) EXPECT_EQ(m1.at(i), m2.at(i));
}

TEST(Mutation, ActuallyChangesTheProgram) {
  const isa::Program poc = attacks::poc_by_name("FR-IAIK").build(PocConfig{});
  Rng rng(3);
  const isa::Program mut = mutate(poc, rng);
  bool differs = mut.size() != poc.size();
  for (std::size_t i = 0; !differs && i < poc.size(); ++i)
    differs = !(mut.at(i).op == poc.at(i).op && mut.at(i).dst == poc.at(i).dst &&
                mut.at(i).src == poc.at(i).src);
  EXPECT_TRUE(differs);
}

TEST(Mutation, KeepsDataImage) {
  const isa::Program poc = attacks::poc_by_name("FR-IAIK").build(PocConfig{});
  Rng rng(5);
  const isa::Program mut = mutate(poc, rng);
  for (const auto& [addr, value] : poc.initial_data())
    EXPECT_EQ(mut.initial_data().at(addr), value);
}

TEST(Mutation, BenignProgramsSurviveToo) {
  const isa::Program p = isa::assemble(R"(
      mov rcx, 30
      mov rax, 0
      loop:
      add rax, rcx
      mov [0x30000], rax
      dec rcx
      jne loop
      hlt
  )");
  cpu::Interpreter ref;
  const std::uint64_t expected = ref.run(p).memory.read(0x30000);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    const isa::Program mut = mutate(p, rng);
    cpu::Interpreter interp;
    EXPECT_EQ(interp.run(mut).memory.read(0x30000), expected)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace scag::mutation
