// Tests for model repository serialization: round-trip fidelity (including
// byte-identical similarity scores), format errors, and file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "attacks/registry.h"
#include "core/serialize.h"
#include "eval/experiments.h"

namespace scag::core {
namespace {

std::vector<AttackModel> poc_models() {
  const ModelBuilder builder(eval::experiment_model_config());
  std::vector<AttackModel> models;
  for (const char* name : {"FR-IAIK", "PP-IAIK", "Spectre-FR-Ideal"}) {
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    models.push_back(builder.build(spec.build(attacks::PocConfig{}),
                                   spec.family));
  }
  return models;
}

TEST(Serialize, RoundTripPreservesEverything) {
  const std::vector<AttackModel> models = poc_models();
  const std::string text = save_models_to_string(models);
  const std::vector<AttackModel> loaded = load_models_from_string(text);

  ASSERT_EQ(loaded.size(), models.size());
  for (std::size_t m = 0; m < models.size(); ++m) {
    EXPECT_EQ(loaded[m].name, models[m].name);
    EXPECT_EQ(loaded[m].family, models[m].family);
    ASSERT_EQ(loaded[m].sequence.size(), models[m].sequence.size());
    for (std::size_t i = 0; i < models[m].sequence.size(); ++i) {
      const CstBbsElement& a = models[m].sequence[i];
      const CstBbsElement& b = loaded[m].sequence[i];
      EXPECT_EQ(a.block, b.block);
      EXPECT_EQ(a.first_cycle, b.first_cycle);
      EXPECT_EQ(a.norm_instrs, b.norm_instrs);
      EXPECT_EQ(a.sem_tokens, b.sem_tokens);
      // Bit-exact cache states (stored as IEEE-754 bit patterns).
      EXPECT_EQ(a.cst.before.ao, b.cst.before.ao);
      EXPECT_EQ(a.cst.after.io, b.cst.after.io);
    }
  }
}

TEST(Serialize, RoundTripReproducesSimilarityScores) {
  const std::vector<AttackModel> models = poc_models();
  const auto loaded =
      load_models_from_string(save_models_to_string(models));
  const DtwConfig dtw = eval::experiment_dtw_config();
  for (std::size_t i = 0; i < models.size(); ++i)
    for (std::size_t j = 0; j < models.size(); ++j)
      EXPECT_DOUBLE_EQ(
          similarity(models[i].sequence, models[j].sequence, dtw),
          similarity(loaded[i].sequence, loaded[j].sequence, dtw));
}

TEST(Serialize, EmptyRepository) {
  const auto loaded =
      load_models_from_string(save_models_to_string({}));
  EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, ModelWithEmptySequence) {
  AttackModel empty;
  empty.name = "empty";
  empty.family = Family::kPrimeProbe;
  const auto loaded =
      load_models_from_string(save_models_to_string({empty}));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].sequence.empty());
}

TEST(Serialize, RejectsMissingHeader) {
  EXPECT_THROW(load_models_from_string("model x FR-F 0\nend\n"),
               SerializeError);
}

TEST(Serialize, RejectsUnknownFamily) {
  EXPECT_THROW(
      load_models_from_string("scaguard-models v1\nmodel x NOPE 0\nend\n"),
      SerializeError);
}

TEST(Serialize, RejectsTruncatedModel) {
  const std::string text =
      "scaguard-models v1\n"
      "model x FR-F 2\n"
      "elem 1 5 0000000000000000 3ff0000000000000 0000000000000000 "
      "3ff0000000000000\n"
      "norm mov reg, mem\n"
      "sem load\n";  // second element + end missing
  EXPECT_THROW(load_models_from_string(text), SerializeError);
}

TEST(Serialize, RejectsBadFloatField) {
  const std::string text =
      "scaguard-models v1\n"
      "model x FR-F 1\n"
      "elem 1 5 zzzz 3ff0000000000000 0 0\n"
      "norm \n"
      "sem \n"
      "end\n";
  EXPECT_THROW(load_models_from_string(text), SerializeError);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  try {
    load_models_from_string("scaguard-models v1\nbogus\n");
    FAIL();
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "scag_repo_test.txt").string();
  const std::vector<AttackModel> models = poc_models();
  save_models_to_file(path, models);
  const auto loaded = load_models_from_file(path);
  EXPECT_EQ(loaded.size(), models.size());
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_models_from_file("/nonexistent/scag.repo"),
               std::runtime_error);
}

TEST(Serialize, DetectorWorksWithLoadedRepository) {
  const auto loaded =
      load_models_from_string(save_models_to_string(poc_models()));
  Detector detector(eval::experiment_model_config(),
                    eval::experiment_dtw_config(), eval::kThreshold);
  for (const AttackModel& m : loaded) detector.enroll(m);
  const Detection det = detector.scan(
      attacks::poc_by_name("FR-Nepoche").build(attacks::PocConfig{}));
  EXPECT_TRUE(det.is_attack());
  EXPECT_EQ(det.verdict, Family::kFlushReload);
}

}  // namespace
}  // namespace scag::core
