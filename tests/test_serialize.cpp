// Tests for model repository serialization: round-trip fidelity (including
// byte-identical similarity scores), format errors, and file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "core/serialize.h"
#include "eval/experiments.h"
#include "support/rng.h"

namespace scag::core {
namespace {

std::vector<AttackModel> poc_models() {
  const ModelBuilder builder(eval::experiment_model_config());
  std::vector<AttackModel> models;
  for (const char* name : {"FR-IAIK", "PP-IAIK", "Spectre-FR-Ideal"}) {
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    models.push_back(builder.build(spec.build(attacks::PocConfig{}),
                                   spec.family));
  }
  return models;
}

TEST(Serialize, RoundTripPreservesEverything) {
  const std::vector<AttackModel> models = poc_models();
  const std::string text = save_models_to_string(models);
  const std::vector<AttackModel> loaded = load_models_from_string(text);

  ASSERT_EQ(loaded.size(), models.size());
  for (std::size_t m = 0; m < models.size(); ++m) {
    EXPECT_EQ(loaded[m].name, models[m].name);
    EXPECT_EQ(loaded[m].family, models[m].family);
    ASSERT_EQ(loaded[m].sequence.size(), models[m].sequence.size());
    for (std::size_t i = 0; i < models[m].sequence.size(); ++i) {
      const CstBbsElement& a = models[m].sequence[i];
      const CstBbsElement& b = loaded[m].sequence[i];
      EXPECT_EQ(a.block, b.block);
      EXPECT_EQ(a.first_cycle, b.first_cycle);
      EXPECT_EQ(a.norm_instrs, b.norm_instrs);
      EXPECT_EQ(a.sem_tokens, b.sem_tokens);
      // Bit-exact cache states (stored as IEEE-754 bit patterns).
      EXPECT_EQ(a.cst.before.ao, b.cst.before.ao);
      EXPECT_EQ(a.cst.after.io, b.cst.after.io);
    }
  }
}

TEST(Serialize, RoundTripReproducesSimilarityScores) {
  const std::vector<AttackModel> models = poc_models();
  const auto loaded =
      load_models_from_string(save_models_to_string(models));
  const DtwConfig dtw = eval::experiment_dtw_config();
  for (std::size_t i = 0; i < models.size(); ++i)
    for (std::size_t j = 0; j < models.size(); ++j)
      EXPECT_DOUBLE_EQ(
          similarity(models[i].sequence, models[j].sequence, dtw),
          similarity(loaded[i].sequence, loaded[j].sequence, dtw));
}

TEST(Serialize, EmptyRepository) {
  const auto loaded =
      load_models_from_string(save_models_to_string({}));
  EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, ModelWithEmptySequence) {
  AttackModel empty;
  empty.name = "empty";
  empty.family = Family::kPrimeProbe;
  const auto loaded =
      load_models_from_string(save_models_to_string({empty}));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].sequence.empty());
}

TEST(Serialize, RejectsMissingHeader) {
  EXPECT_THROW(load_models_from_string("model x FR-F 0\nend\n"),
               SerializeError);
}

TEST(Serialize, RejectsUnknownFamily) {
  EXPECT_THROW(
      load_models_from_string("scaguard-models v1\nmodel x NOPE 0\nend\n"),
      SerializeError);
}

TEST(Serialize, RejectsTruncatedModel) {
  const std::string text =
      "scaguard-models v1\n"
      "model x FR-F 2\n"
      "elem 1 5 0000000000000000 3ff0000000000000 0000000000000000 "
      "3ff0000000000000\n"
      "norm mov reg, mem\n"
      "sem load\n";  // second element + end missing
  EXPECT_THROW(load_models_from_string(text), SerializeError);
}

TEST(Serialize, RejectsBadFloatField) {
  const std::string text =
      "scaguard-models v1\n"
      "model x FR-F 1\n"
      "elem 1 5 zzzz 3ff0000000000000 0 0\n"
      "norm \n"
      "sem \n"
      "end\n";
  EXPECT_THROW(load_models_from_string(text), SerializeError);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  try {
    load_models_from_string("scaguard-models v1\nbogus\n");
    FAIL();
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "scag_repo_test.txt").string();
  const std::vector<AttackModel> models = poc_models();
  save_models_to_file(path, models);
  const auto loaded = load_models_from_file(path);
  EXPECT_EQ(loaded.size(), models.size());
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_models_from_file("/nonexistent/scag.repo"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Save-time validation: the line-oriented grammar cannot represent every
// string, so save_models must reject hostile models up front instead of
// writing a repository that loads back corrupted (or not at all).

AttackModel one_elem_model(std::string name, std::vector<std::string> norm,
                           std::vector<std::string> sem) {
  AttackModel m;
  m.name = std::move(name);
  m.family = Family::kFlushReload;
  CstBbsElement e;
  e.block = 1;
  e.first_cycle = 2;
  e.cst.before.ao = 1.0;
  e.cst.after.io = 0.5;
  e.norm_instrs = std::move(norm);
  e.sem_tokens = std::move(sem);
  m.sequence.push_back(std::move(e));
  return m;
}

TEST(SerializeSave, RejectsEmptyModelName) {
  EXPECT_THROW(save_models_to_string({one_elem_model("", {}, {})}),
               SerializeError);
}

TEST(SerializeSave, RejectsWhitespaceInModelName) {
  for (const char* name : {"has space", "has\ttab", "has\nnewline", " edge"}) {
    EXPECT_THROW(save_models_to_string({one_elem_model(name, {}, {})}),
                 SerializeError)
        << "name: " << name;
  }
}

TEST(SerializeSave, RejectsHostileNormTokens) {
  for (const char* tok : {"", "a|b", " edge", "edge ", "line\nbreak"}) {
    EXPECT_THROW(save_models_to_string({one_elem_model("m", {tok}, {})}),
                 SerializeError)
        << "token: " << tok;
  }
}

TEST(SerializeSave, RejectsHostileSemTokens) {
  for (const char* tok : {"", "two words", "tab\there"}) {
    EXPECT_THROW(save_models_to_string({one_elem_model("m", {}, {tok})}),
                 SerializeError)
        << "token: " << tok;
  }
}

TEST(SerializeSave, AcceptsInteriorWhitespaceInNormTokens) {
  // Norm tokens are split on '|', so interior spaces are representable
  // ("mov reg, mem" is the normal shape) -- only edge whitespace and '|'
  // corrupt the record.
  const auto models = {one_elem_model("m", {"mov reg, mem"}, {"load"})};
  const auto loaded = load_models_from_string(save_models_to_string(models));
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_EQ(loaded[0].sequence[0].norm_instrs.size(), 1u);
  EXPECT_EQ(loaded[0].sequence[0].norm_instrs[0], "mov reg, mem");
}

TEST(SerializeSave, SaveTimeErrorsCarryLineZero) {
  try {
    save_models_to_string({one_elem_model("bad name", {}, {})});
    FAIL();
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.line(), 0u);
    EXPECT_NE(std::string(e.what()).find("bad name"), std::string::npos);
  }
}

// Seeded property test: random models (some with hostile names/tokens)
// either fail save_models up front, or round-trip byte-identically.
TEST(SerializeSave, HostileRoundTripProperty) {
  Rng rng(20260806);
  const std::string name_chars = "abcXYZ019-_. \t|";
  const std::string token_chars = "abz09,+<>| \t";

  auto random_string = [&](const std::string& chars, std::size_t max_len) {
    std::string s;
    const std::size_t len = rng.below(max_len + 1);
    for (std::size_t i = 0; i < len; ++i)
      s += chars[static_cast<std::size_t>(rng.below(chars.size()))];
    return s;
  };
  auto has_ws = [](const std::string& s) {
    return s.find_first_of(" \t\n\r") != std::string::npos;
  };
  // Mirror of the documented validation rules, derived independently.
  auto serializable = [&](const AttackModel& m) {
    if (m.name.empty() || has_ws(m.name)) return false;
    for (const CstBbsElement& e : m.sequence) {
      for (const std::string& t : e.norm_instrs) {
        if (t.empty() || t.find('|') != std::string::npos) return false;
        if (t.front() == ' ' || t.front() == '\t' || t.back() == ' ' ||
            t.back() == '\t')
          return false;
      }
      for (const std::string& t : e.sem_tokens)
        if (t.empty() || has_ws(t)) return false;
    }
    return true;
  };

  for (int iter = 0; iter < 200; ++iter) {
    std::vector<AttackModel> models;
    const std::size_t n_models = 1 + rng.below(3);
    bool all_ok = true;
    for (std::size_t mi = 0; mi < n_models; ++mi) {
      AttackModel m;
      // '#' + index keeps names unique and non-empty without affecting
      // whether the random part is hostile.
      m.name = random_string(name_chars, 8) + "#" + std::to_string(mi);
      m.family = static_cast<Family>(rng.below(4));
      const std::size_t n_elems = rng.below(4);
      for (std::size_t ei = 0; ei < n_elems; ++ei) {
        CstBbsElement e;
        e.block = static_cast<cfg::BlockId>(rng.below(100));
        e.first_cycle = rng.next();
        e.cst.before.ao = rng.uniform01();
        e.cst.before.io = rng.chance(0.1) ? 0.0 : rng.uniform01();
        e.cst.after.ao = rng.uniform_real(-4.0, 4.0);
        e.cst.after.io = rng.chance(0.05)
                             ? std::numeric_limits<double>::quiet_NaN()
                             : rng.uniform01();
        const std::size_t n_norm = rng.below(3);
        for (std::size_t t = 0; t < n_norm; ++t)
          e.norm_instrs.push_back(random_string(token_chars, 6));
        const std::size_t n_sem = rng.below(3);
        for (std::size_t t = 0; t < n_sem; ++t)
          e.sem_tokens.push_back(random_string(token_chars, 6));
        m.sequence.push_back(std::move(e));
      }
      all_ok = all_ok && serializable(m);
      models.push_back(std::move(m));
    }

    if (!all_ok) {
      EXPECT_THROW(save_models_to_string(models), SerializeError)
          << "iter " << iter;
      continue;
    }
    const std::string text = save_models_to_string(models);
    const std::vector<AttackModel> loaded = load_models_from_string(text);
    ASSERT_EQ(loaded.size(), models.size()) << "iter " << iter;
    // Byte-identical re-save implies a lossless round trip (NaN cache
    // states included: the format stores IEEE-754 bit patterns).
    EXPECT_EQ(save_models_to_string(loaded), text) << "iter " << iter;
  }
}

// ---------------------------------------------------------------------------
// Load-time hardening.

TEST(SerializeLoad, RejectsDuplicateModelNames) {
  const std::string text =
      "scaguard-models v1\n"
      "model dup FR-F 0\n"
      "end\n"
      "model dup PP-F 0\n"
      "end\n";
  try {
    load_models_from_string(text);
    FAIL();
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.line(), 4u);  // the second `model` line
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(SerializeLoad, RejectsOversizedElementCountAtModelLine) {
  const std::string text = "scaguard-models v1\nmodel big FR-F " +
                           std::to_string(kMaxModelElements + 1) + "\n";
  try {
    load_models_from_string(text);
    FAIL();
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos);
  }
}

TEST(SerializeLoad, RejectsAbsurdElementCountWithoutScanning) {
  // A count near 2^63 must fail instantly at the `model` line, not after
  // looping through billions of next_line() calls.
  EXPECT_THROW(load_models_from_string(
                   "scaguard-models v1\nmodel big FR-F 5000000000\n"),
               SerializeError);
}

// ---------------------------------------------------------------------------
// Atomic file writes.

TEST(SerializeFile, FailedSaveLeavesDestinationIntact) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "scag_atomic_test.repo")
          .string();
  save_models_to_file(path, {one_elem_model("good", {"mov"}, {"load"})});
  std::ifstream in(path);
  const std::string before((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  in.close();

  EXPECT_THROW(save_models_to_file(path, {one_elem_model("bad name", {}, {})}),
               SerializeError);

  std::ifstream in2(path);
  const std::string after((std::istreambuf_iterator<char>(in2)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(after, before);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(SerializeFile, SaveToUnwritableDirectoryThrows) {
  const std::string path = "/nonexistent_scag_dir/models.repo";
  EXPECT_THROW(save_models_to_file(path, {}), std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SerializeFile, OverwritesExistingFileAtomically) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "scag_overwrite_test.repo")
          .string();
  save_models_to_file(path, {one_elem_model("first", {}, {})});
  save_models_to_file(path, {one_elem_model("second", {}, {})});
  const auto loaded = load_models_from_file(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "second");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Golden file: pins the `scaguard-models v1` on-disk format byte-exact.
// If this test fails, the format changed -- bump the version string and
// add a migration path instead of silently breaking saved repositories.

const char kGoldenText[] =
    "scaguard-models v1\n"
    "model golden-a FR-F 2\n"
    "elem 3 17 3ff0000000000000 3fe0000000000000 3fd0000000000000 "
    "0000000000000000\n"
    "norm mov reg, mem|clflush mem\n"
    "sem load flush\n"
    "elem 4 99 0000000000000000 0000000000000000 3fe8000000000000 "
    "3ff0000000000000\n"
    "norm \n"
    "sem \n"
    "end\n"
    "model golden-b S-PP 0\n"
    "end\n";

std::vector<AttackModel> golden_models() {
  AttackModel a;
  a.name = "golden-a";
  a.family = Family::kFlushReload;
  CstBbsElement e0;
  e0.block = 3;
  e0.first_cycle = 17;
  e0.cst.before.ao = 1.0;    // 3ff0000000000000
  e0.cst.before.io = 0.5;    // 3fe0000000000000
  e0.cst.after.ao = 0.25;    // 3fd0000000000000
  e0.cst.after.io = 0.0;     // 0000000000000000
  e0.norm_instrs = {"mov reg, mem", "clflush mem"};
  e0.sem_tokens = {"load", "flush"};
  CstBbsElement e1;
  e1.block = 4;
  e1.first_cycle = 99;
  e1.cst.after.ao = 0.75;    // 3fe8000000000000
  e1.cst.after.io = 1.0;
  a.sequence = {e0, e1};

  AttackModel b;
  b.name = "golden-b";
  b.family = Family::kSpectrePP;
  return {a, b};
}

TEST(SerializeGolden, SaveMatchesGoldenBytes) {
  EXPECT_EQ(save_models_to_string(golden_models()), kGoldenText);
}

TEST(SerializeGolden, GoldenBytesLoadBack) {
  const std::vector<AttackModel> loaded = load_models_from_string(kGoldenText);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "golden-a");
  EXPECT_EQ(loaded[0].family, Family::kFlushReload);
  ASSERT_EQ(loaded[0].sequence.size(), 2u);
  EXPECT_EQ(loaded[0].sequence[0].block, 3u);
  EXPECT_EQ(loaded[0].sequence[0].first_cycle, 17u);
  EXPECT_EQ(loaded[0].sequence[0].cst.before.ao, 1.0);
  EXPECT_EQ(loaded[0].sequence[0].cst.before.io, 0.5);
  EXPECT_EQ(loaded[0].sequence[0].cst.after.ao, 0.25);
  EXPECT_EQ(loaded[0].sequence[0].cst.after.io, 0.0);
  EXPECT_EQ(loaded[0].sequence[0].norm_instrs,
            (std::vector<std::string>{"mov reg, mem", "clflush mem"}));
  EXPECT_EQ(loaded[0].sequence[0].sem_tokens,
            (std::vector<std::string>{"load", "flush"}));
  EXPECT_TRUE(loaded[0].sequence[1].norm_instrs.empty());
  EXPECT_TRUE(loaded[0].sequence[1].sem_tokens.empty());
  EXPECT_EQ(loaded[1].name, "golden-b");
  EXPECT_EQ(loaded[1].family, Family::kSpectrePP);
  EXPECT_TRUE(loaded[1].sequence.empty());
  // And the round trip reproduces the golden bytes exactly.
  EXPECT_EQ(save_models_to_string(loaded), kGoldenText);
}

TEST(Serialize, DetectorWorksWithLoadedRepository) {
  const auto loaded =
      load_models_from_string(save_models_to_string(poc_models()));
  Detector detector(eval::experiment_model_config(),
                    eval::experiment_dtw_config(), eval::kThreshold);
  for (const AttackModel& m : loaded) detector.enroll(m);
  const Detection det = detector.scan(
      attacks::poc_by_name("FR-Nepoche").build(attacks::PocConfig{}));
  EXPECT_TRUE(det.is_attack());
  EXPECT_EQ(det.verdict, Family::kFlushReload);
}

}  // namespace
}  // namespace scag::core
