// Failure-path harness for the fault-injection layer (support/failpoint.h).
//
// The contract under test:
//   - Every failpoint declared in the registry can actually fire: the
//     sweep arms each site in turn (error mode and throw mode), pushes the
//     full pipeline through it, and proves via hit counters that the site
//     triggered. A declared-but-unreachable failpoint fails the sweep.
//   - No single fault crashes the process or poisons unrelated work:
//     faults surface as typed errors (IoError, FailpointError,
//     ScanTimeoutError), per-item ScanOutcome slots, or documented
//     degradations (serial pool drain, string-kernel fallback) — and the
//     stages downstream of a faulted stage still run.
//   - Trigger gates (@every, %probability:seed, #max_fires) are exact and
//     deterministic, so any failure found here replays bit-identically.
//   - The retrying loader retries IoError-class faults and only those.
//
// Randomized sections derive their seed via tests/seed_util.h: failures
// print the SCAG_TEST_SEED=<n> replay line.
//
// Under -DSCAG_FAILPOINTS_OFF every test here SKIPs (the layer is
// compiled out; behavior is covered by the ordinary suite instead).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "core/serialize.h"
#include "seed_util.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/thread_pool.h"

namespace scag::core {
namespace {

namespace fp = support::fp;

std::uint64_t fired_count(const std::string& name) {
  for (const fp::SiteSnapshot& s : fp::snapshot())
    if (s.name == name) return s.fired;
  ADD_FAILURE() << "failpoint '" << name << "' not in snapshot";
  return 0;
}

std::uint64_t eval_count(const std::string& name) {
  for (const fp::SiteSnapshot& s : fp::snapshot())
    if (s.name == name) return s.evaluations;
  ADD_FAILURE() << "failpoint '" << name << "' not in snapshot";
  return 0;
}

/// What one end-to-end pipeline pass observed. The harness never lets an
/// injected fault escape: each stage is isolated, failures are recorded,
/// and the pass always completes.
struct PipelineReport {
  int stages_run = 0;
  int stages_failed = 0;
  std::vector<std::string> failures;  // "stage: what()" lines

  void record(const std::string& stage, const std::exception& e) {
    ++stages_failed;
    failures.push_back(stage + ": " + e.what());
  }
};

/// Shared unfaulted corpus, built once while nothing is armed: a detector
/// with two PoCs enrolled, a pristine on-disk repository, pre-modeled scan
/// targets, and the raw programs for the modeling stages.
class FailpointPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (!fp::compiled_in()) return;
    fp::disarm_all();

    detector_ = new Detector(ModelConfig{}, calibrated_dtw_config(), 0.45);
    const std::vector<attacks::PocSpec>& pocs = attacks::all_pocs();
    for (std::size_t i = 0; i < 2; ++i)
      detector_->enroll(pocs[i].build(attacks::PocConfig{}), pocs[i].family);

    programs_ = new std::vector<isa::Program>();
    programs_->push_back(pocs[0].build(attacks::PocConfig{}));
    programs_->push_back(pocs[2].build(attacks::PocConfig{}));
    Rng rng(2026);
    const auto& benign = benign::all_benign_templates();
    for (std::size_t i = 0; i < 2 && i < benign.size(); ++i) {
      Rng gen = rng.split();
      programs_->push_back(benign[i].build(gen));
    }

    targets_ = new std::vector<CstBbs>();
    for (const isa::Program& p : *programs_)
      targets_->push_back(detector_->builder().build(p).sequence);

    // Per-process path: ctest -j builds this fixture in many processes
    // at once.
    pristine_repo_path_ =
        new std::string(::testing::TempDir() + "scag_fp_pristine_" +
                        std::to_string(getpid()) + ".repo");
    save_models_to_file(*pristine_repo_path_, detector_->repository());
  }

  static void TearDownTestSuite() {
    if (!fp::compiled_in()) return;
    if (pristine_repo_path_) std::remove(pristine_repo_path_->c_str());
    delete detector_;
    delete programs_;
    delete targets_;
    delete pristine_repo_path_;
    detector_ = nullptr;
    programs_ = nullptr;
    targets_ = nullptr;
    pristine_repo_path_ = nullptr;
  }

  void SetUp() override {
    if (!fp::compiled_in())
      GTEST_SKIP() << "built with SCAG_FAILPOINTS_OFF";
    fp::disarm_all();
    fp::reset_counters();
  }

  void TearDown() override {
    if (fp::compiled_in()) {
      fp::disarm_all();
      fp::reset_counters();
    }
  }

  /// One full pass through every fault-instrumented stage. Each stage is
  /// individually guarded so an armed failpoint in stage k never stops
  /// stages k+1..n from running — exactly the isolation the subsystem
  /// promises. Covers (by failpoint name):
  ///   model:       cache.access, cpu.step
  ///   save:        serialize.save.{open,write,rename}
  ///   load:        serialize.load.{open,read}  (retrying loader)
  ///   scan:        detector.scan, compiled.compile_target
  ///   pool:        pool.enqueue, pool.worker   (slow job: workers wake)
  ///   batch:       batch.model_target, batch.scan_target (+ all of the
  ///                above again through the outcome APIs)
  static PipelineReport run_pipeline() {
    PipelineReport r;

    // Stage: model a program from scratch (cpu + cache simulation).
    ++r.stages_run;
    try {
      (void)detector_->builder().build((*programs_)[0]);
    } catch (const std::exception& e) {
      r.record("model", e);
    }

    // Stage: save the repository (atomic tmp+rename writer).
    ++r.stages_run;
    const std::string save_path = ::testing::TempDir() + "scag_fp_save_" +
                                  std::to_string(getpid()) + ".repo";
    try {
      save_models_to_file(save_path, detector_->repository());
    } catch (const std::exception& e) {
      r.record("save", e);
    }
    std::remove(save_path.c_str());
    std::remove((save_path + ".tmp").c_str());

    // Stage: load the pristine repository through the retrying loader.
    ++r.stages_run;
    try {
      (void)load_models_from_file(*pristine_repo_path_, RetryPolicy{});
    } catch (const std::exception& e) {
      r.record("load", e);
    }

    // Stage: serial detector scan of a pre-modeled target.
    ++r.stages_run;
    try {
      (void)detector_->scan((*targets_)[0]);
    } catch (const std::exception& e) {
      r.record("scan", e);
    }

    // Stage: a deliberately slow pool job, so that the worker threads are
    // guaranteed to wake and evaluate pool.worker (a fast job can be fully
    // drained by the calling lane before a worker claims it).
    ++r.stages_run;
    try {
      support::ThreadPool pool(4);
      pool.parallel_for(
          16,
          [](std::size_t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          },
          /*grain=*/1);
    } catch (const std::exception& e) {
      r.record("pool", e);
    }

    // Stage: the degrading batch APIs — full pipeline per program. These
    // must never throw; faults land in per-item outcome slots.
    ++r.stages_run;
    try {
      BatchConfig config;
      config.threads = 4;
      const BatchDetector batch(*detector_, config);
      const std::vector<ScanOutcome> by_program =
          batch.scan_programs_outcomes(*programs_);
      if (by_program.size() != programs_->size())
        throw std::logic_error("scan_programs_outcomes dropped slots");
      const std::vector<ScanOutcome> by_target =
          batch.scan_all_outcomes(*targets_);
      if (by_target.size() != targets_->size())
        throw std::logic_error("scan_all_outcomes dropped slots");
    } catch (const std::exception& e) {
      r.record("batch", e);
    }

    return r;
  }

  /// Registry names the library-side pipeline can reach. scagctl.* sites
  /// live in the CLI binary and are swept by tests/test_scagctl_cli.cpp.
  static std::vector<std::string> sweepable_names() {
    std::vector<std::string> names;
    for (const std::string& n : fp::registered())
      if (n.rfind("scagctl.", 0) != 0) names.push_back(n);
    return names;
  }

  static Detector* detector_;
  static std::vector<isa::Program>* programs_;
  static std::vector<CstBbs>* targets_;
  static std::string* pristine_repo_path_;
};

Detector* FailpointPipeline::detector_ = nullptr;
std::vector<isa::Program>* FailpointPipeline::programs_ = nullptr;
std::vector<CstBbs>* FailpointPipeline::targets_ = nullptr;
std::string* FailpointPipeline::pristine_repo_path_ = nullptr;

// ---- Registry basics -------------------------------------------------------

TEST_F(FailpointPipeline, RegistryIsClosedAndNonEmpty) {
  const std::vector<std::string> names = fp::registered();
  ASSERT_GE(names.size(), 10u);
  // Undeclared names are a programming error, not a silent no-op.
  EXPECT_THROW((void)fp::hit("no.such.failpoint"), std::logic_error);
  EXPECT_THROW((void)fp::site("no.such.failpoint"), std::logic_error);
  EXPECT_THROW(fp::arm("no.such.failpoint", fp::Spec{}), std::logic_error);
  // Snapshot covers exactly the registry.
  const std::vector<fp::SiteSnapshot> snap = fp::snapshot();
  ASSERT_EQ(snap.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(snap[i].name, names[i]);
}

TEST_F(FailpointPipeline, SpecStringParserAcceptsGrammarAndRejectsGarbage) {
  EXPECT_EQ(fp::arm_from_string("cpu.step=error"), 1u);
  EXPECT_EQ(fp::arm_from_string(
                "cache.access=throw%0.5:42;serialize.load.read=delay:3@7#2"),
            2u);
  fp::disarm_all();
  EXPECT_EQ(fp::arm_from_string(""), 0u);
  EXPECT_EQ(fp::arm_from_string(" ; ; "), 0u);
  EXPECT_THROW(fp::arm_from_string("cpu.step"), std::invalid_argument);
  EXPECT_THROW(fp::arm_from_string("cpu.step=explode"),
               std::invalid_argument);
  EXPECT_THROW(fp::arm_from_string("cpu.step=error@zero"),
               std::invalid_argument);
  EXPECT_THROW(fp::arm_from_string("cpu.step=error%0.5"),
               std::invalid_argument);  // probability requires :seed
  EXPECT_THROW(fp::arm_from_string("not.a.site=error"), std::logic_error);
}

// ---- The exhaustive sweep --------------------------------------------------

// Arms every registered (library-reachable) failpoint in turn, in both
// error and throw mode, runs the full pipeline, and asserts that (a) the
// process survives with per-stage isolation intact and (b) the armed site
// actually fired — counters are the proof that no failpoint is dead code.
TEST_F(FailpointPipeline, EverySiteFiresAndNothingCrashes) {
  for (const std::string& name : sweepable_names()) {
    for (const fp::Kind kind : {fp::Kind::kError, fp::Kind::kThrow}) {
      SCOPED_TRACE("failpoint=" + name +
                   (kind == fp::Kind::kError ? " kind=error" : " kind=throw"));
      fp::disarm_all();
      fp::reset_counters();
      fp::Spec spec;
      spec.kind = kind;
      fp::arm(name, spec);

      const PipelineReport report = run_pipeline();
      fp::disarm_all();

      // The pass completed every stage; faults were contained.
      EXPECT_EQ(report.stages_run, 6);
      // The site was both reached and triggered.
      EXPECT_GT(eval_count(name), 0u) << "site never evaluated";
      EXPECT_GT(fired_count(name), 0u)
          << "site armed but never fired; failures: " +
                 ::testing::PrintToString(report.failures);
      // Counter sanity across the whole registry.
      for (const fp::SiteSnapshot& s : fp::snapshot())
        EXPECT_LE(s.fired, s.evaluations) << s.name;
    }
  }
}

// Seeded random pairs: two simultaneous faults must still be contained.
// (One fault can mask the other's stage, so only survival and counter
// consistency are asserted, not that both fired.)
TEST_F(FailpointPipeline, RandomPairsOfFaultsAreContained) {
  const std::uint64_t seed = testutil::test_seed(0x5ca6'f001);
  SCOPED_TRACE(testutil::seed_note(seed));
  std::mt19937_64 rng(seed);
  const std::vector<std::string> names = sweepable_names();
  ASSERT_GE(names.size(), 2u);

  for (int round = 0; round < 8; ++round) {
    std::uniform_int_distribution<std::size_t> pick(0, names.size() - 1);
    const std::size_t a = pick(rng);
    std::size_t b = pick(rng);
    while (b == a) b = pick(rng);
    SCOPED_TRACE("round " + std::to_string(round) + ": " + names[a] + " + " +
                 names[b]);

    fp::disarm_all();
    fp::reset_counters();
    fp::Spec spec;
    spec.kind = (round % 2 == 0) ? fp::Kind::kError : fp::Kind::kThrow;
    fp::arm(names[a], spec);
    fp::arm(names[b], spec);

    const PipelineReport report = run_pipeline();
    fp::disarm_all();

    EXPECT_EQ(report.stages_run, 6);
    EXPECT_GT(fired_count(names[a]) + fired_count(names[b]), 0u);
    for (const fp::SiteSnapshot& s : fp::snapshot())
      EXPECT_LE(s.fired, s.evaluations) << s.name;
  }
}

// ---- Trigger gates ---------------------------------------------------------

TEST_F(FailpointPipeline, EveryNthGateFiresExactly) {
  fp::Spec spec;
  spec.kind = fp::Kind::kError;
  spec.every = 10;
  fp::arm("cpu.step", spec);
  fp::Site& s = fp::site("cpu.step");
  std::uint64_t fired = 0;
  for (int i = 0; i < 100; ++i)
    if (s.hit()) ++fired;
  EXPECT_EQ(fired, 10u);
  EXPECT_EQ(fired_count("cpu.step"), 10u);
}

TEST_F(FailpointPipeline, MaxFiresBudgetStopsExactly) {
  fp::Spec spec;
  spec.kind = fp::Kind::kError;
  spec.max_fires = 3;
  fp::arm("cache.access", spec);
  fp::Site& s = fp::site("cache.access");
  std::uint64_t fired = 0;
  for (int i = 0; i < 50; ++i)
    if (s.hit()) ++fired;
  EXPECT_EQ(fired, 3u);
  // Re-arming resets the budget.
  fp::arm("cache.access", spec);
  fired = 0;
  for (int i = 0; i < 50; ++i)
    if (s.hit()) ++fired;
  EXPECT_EQ(fired, 3u);
}

TEST_F(FailpointPipeline, SeededProbabilityIsDeterministic) {
  const auto run = [](std::uint64_t seed) {
    fp::Spec spec;
    spec.kind = fp::Kind::kError;
    spec.probability = 0.3;
    spec.seed = seed;
    fp::arm("cpu.step", spec);
    fp::Site& s = fp::site("cpu.step");
    std::uint64_t fired = 0;
    for (int i = 0; i < 2000; ++i)
      if (s.hit()) ++fired;
    fp::disarm("cpu.step");
    return fired;
  };
  const std::uint64_t first = run(42);
  const std::uint64_t replay = run(42);
  EXPECT_EQ(first, replay) << "same seed must replay bit-identically";
  EXPECT_GT(first, 0u);
  EXPECT_LT(first, 2000u);
  // ~30% of 2000 with generous slack: proves it is a rate, not a constant.
  EXPECT_NEAR(static_cast<double>(first), 600.0, 200.0);
  const std::uint64_t other = run(43);
  EXPECT_NE(first, other) << "different seeds should explore differently "
                             "(astronomically unlikely to collide)";
}

TEST_F(FailpointPipeline, DelayModeSleepsAndReturnsFalse) {
  fp::Spec spec;
  spec.kind = fp::Kind::kDelay;
  spec.delay_ms = 20;
  spec.max_fires = 1;
  fp::arm("detector.scan", spec);
  const std::uint64_t t0 = support::monotonic_ns();
  const Detection d = detector_->scan((*targets_)[0]);  // must not throw
  const std::uint64_t elapsed_ms = (support::monotonic_ns() - t0) / 1'000'000;
  EXPECT_GE(elapsed_ms, 20u);
  EXPECT_EQ(fired_count("detector.scan"), 1u);
  EXPECT_EQ(d.scores.size(), detector_->repository_size());
}

// ---- Degradation semantics -------------------------------------------------

// A failed pool publish degrades to a serial drain with identical results.
TEST_F(FailpointPipeline, PoolEnqueueFaultDegradesToSerialSameResults) {
  BatchConfig config;
  config.threads = 4;
  const BatchDetector batch(*detector_, config);
  const std::vector<Detection> want = batch.scan_all(*targets_);

  static support::Counter& degraded =
      support::Registry::global().counter("pool.degraded_serial");
  const std::uint64_t degraded_before = degraded.value();
  fp::Spec spec;
  spec.kind = fp::Kind::kThrow;
  fp::arm("pool.enqueue", spec);
  const std::vector<Detection> got = batch.scan_all(*targets_);
  fp::disarm("pool.enqueue");

  EXPECT_GT(degraded.value(), degraded_before);
  EXPECT_GT(fired_count("pool.enqueue"), 0u);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].verdict, want[i].verdict) << i;
    EXPECT_EQ(got[i].best_score, want[i].best_score) << i;
  }
}

// Workers that fail to claim a job sit it out; the job still completes
// because the calling lane drains every index.
TEST_F(FailpointPipeline, PoolWorkerFaultStillCompletesEveryIndex) {
  fp::Spec spec;
  spec.kind = fp::Kind::kThrow;
  fp::arm("pool.worker", spec);
  support::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    hits[i].fetch_add(1);
  });
  fp::disarm("pool.worker");
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  EXPECT_GT(fired_count("pool.worker"), 0u);
}

// A compile-step fault falls back to the string kernels, bit-identically.
TEST_F(FailpointPipeline, CompiledFaultFallsBackBitIdentically) {
  Detection want;
  {
    Detector reference(ModelConfig{}, calibrated_dtw_config(), 0.45);
    const auto& pocs = attacks::all_pocs();
    for (std::size_t i = 0; i < 2; ++i)
      reference.enroll(pocs[i].build(attacks::PocConfig{}), pocs[i].family);
    reference.set_use_compiled(false);
    want = reference.scan((*targets_)[0]);
  }
  fp::Spec spec;
  spec.kind = fp::Kind::kThrow;
  fp::arm("compiled.compile_target", spec);
  const Detection got = detector_->scan((*targets_)[0]);
  fp::disarm("compiled.compile_target");

  EXPECT_GT(fired_count("compiled.compile_target"), 0u);
  EXPECT_EQ(got.verdict, want.verdict);
  EXPECT_EQ(got.best_score, want.best_score);
  ASSERT_EQ(got.scores.size(), want.scores.size());
  for (std::size_t j = 0; j < want.scores.size(); ++j)
    EXPECT_EQ(got.scores[j].score, want.scores[j].score) << "rank " << j;
}

// Per-item isolation: a fault on every 2nd modeling call errors exactly
// those slots; the others match an unfaulted run bit-identically.
TEST_F(FailpointPipeline, BatchOutcomesIsolatePerItem) {
  BatchConfig config;
  config.threads = 1;  // serial lanes: deterministic slot->evaluation order
  const BatchDetector batch(*detector_, config);
  const std::vector<ScanOutcome> want =
      batch.scan_programs_outcomes(*programs_);
  for (const ScanOutcome& o : want) ASSERT_TRUE(o.ok());

  fp::Spec spec;
  spec.kind = fp::Kind::kError;
  spec.every = 2;
  fp::arm("batch.model_target", spec);
  const std::vector<ScanOutcome> got =
      batch.scan_programs_outcomes(*programs_);
  fp::disarm("batch.model_target");

  ASSERT_EQ(got.size(), want.size());
  std::size_t errored = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].ok()) {
      EXPECT_EQ(got[i].detection.verdict, want[i].detection.verdict) << i;
      EXPECT_EQ(got[i].detection.best_score, want[i].detection.best_score)
          << i;
    } else {
      ++errored;
      EXPECT_EQ(got[i].status, ScanStatus::kError) << i;
      EXPECT_EQ(got[i].stage, "model") << i;
      EXPECT_EQ(got[i].failpoint, "batch.model_target") << i;
      EXPECT_FALSE(got[i].error.empty()) << i;
    }
  }
  EXPECT_EQ(errored, got.size() / 2);
}

// The cooperative deadline turns a stalled target into a kTimedOut
// outcome instead of hanging its lane.
TEST_F(FailpointPipeline, DeadlineTurnsStallIntoTimedOutOutcome) {
  static support::Counter& timeouts =
      support::Registry::global().counter("batch.outcome_timeouts");
  const std::uint64_t timeouts_before = timeouts.value();

  BatchConfig config;
  config.threads = 2;
  config.scan.deadline_ms = 5;
  const BatchDetector batch(*detector_, config);

  // The injected 40ms stall sits between the deadline computation and the
  // scan, so every target's budget is provably exhausted.
  fp::Spec spec;
  spec.kind = fp::Kind::kDelay;
  spec.delay_ms = 40;
  fp::arm("batch.scan_target", spec);
  const std::vector<ScanOutcome> got = batch.scan_all_outcomes(*targets_);
  fp::disarm("batch.scan_target");

  ASSERT_EQ(got.size(), targets_->size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status, ScanStatus::kTimedOut) << i;
    EXPECT_NE(got[i].error.find("deadline"), std::string::npos) << i;
  }
  EXPECT_GE(timeouts.value(), timeouts_before + targets_->size());

  // Without the stall the same config scans everything fine.
  const std::vector<ScanOutcome> clean = batch.scan_all_outcomes(*targets_);
  for (const ScanOutcome& o : clean) EXPECT_TRUE(o.ok());
}

// ---- The retrying loader ---------------------------------------------------

TEST_F(FailpointPipeline, LoaderRetriesTransientFaultAndSucceeds) {
  static support::Counter& retries =
      support::Registry::global().counter("serialize.load_retries");
  const std::uint64_t retries_before = retries.value();

  // Fail the first open only; the retry must succeed.
  ASSERT_EQ(fp::arm_from_string("serialize.load.open=error#1"), 1u);
  const std::vector<AttackModel> models =
      load_models_from_file(*pristine_repo_path_, RetryPolicy{});
  fp::disarm_all();

  EXPECT_EQ(models.size(), detector_->repository_size());
  EXPECT_EQ(fired_count("serialize.load.open"), 1u);
  EXPECT_EQ(retries.value(), retries_before + 1);
}

TEST_F(FailpointPipeline, LoaderGivesUpAfterMaxAttemptsWithAnnotatedError) {
  ASSERT_EQ(fp::arm_from_string("serialize.load.open=error"), 1u);
  try {
    (void)load_models_from_file(*pristine_repo_path_, RetryPolicy{});
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("3 attempts"), std::string::npos)
        << e.what();
  }
  fp::disarm_all();
  EXPECT_EQ(fired_count("serialize.load.open"), 3u);
}

TEST_F(FailpointPipeline, LoaderNeverRetriesParseErrors) {
  static support::Counter& retries =
      support::Registry::global().counter("serialize.load_retries");
  const std::uint64_t retries_before = retries.value();
  const std::string path = ::testing::TempDir() + "scag_fp_malformed_" +
                           std::to_string(getpid()) + ".repo";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a repository\n", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)load_models_from_file(path, RetryPolicy{}),
               SerializeError);
  std::remove(path.c_str());
  EXPECT_EQ(retries.value(), retries_before)
      << "SerializeError is terminal and must not be retried";
}

// A failed atomic save leaves no partial destination file behind and the
// previous repository intact.
TEST_F(FailpointPipeline, FailedSaveLeavesPreviousFileIntact) {
  const std::string path = ::testing::TempDir() + "scag_fp_atomic_" +
                           std::to_string(getpid()) + ".repo";
  save_models_to_file(path, detector_->repository());
  const std::vector<AttackModel> before =
      load_models_from_file(path, RetryPolicy{});

  for (const char* site :
       {"serialize.save.open", "serialize.save.write",
        "serialize.save.rename"}) {
    SCOPED_TRACE(site);
    fp::Spec spec;
    spec.kind = fp::Kind::kError;
    fp::arm(site, spec);
    EXPECT_THROW(save_models_to_file(path, detector_->repository()), IoError);
    fp::disarm(site);
    // The previous contents still load and are unchanged.
    const std::vector<AttackModel> after =
        load_models_from_file(path, RetryPolicy{});
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i)
      EXPECT_EQ(after[i].name, before[i].name);
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---- Metrics mirror --------------------------------------------------------

TEST_F(FailpointPipeline, FiredCountsMirrorIntoMetricsCounters) {
  support::Counter& mirrored =
      support::Registry::global().counter("fp.fired.cpu.step");
  const std::uint64_t before = mirrored.value();
  fp::Spec spec;
  spec.kind = fp::Kind::kError;
  spec.max_fires = 7;
  fp::arm("cpu.step", spec);
  fp::Site& s = fp::site("cpu.step");
  for (int i = 0; i < 100; ++i) (void)s.hit();
  fp::disarm("cpu.step");
  EXPECT_EQ(mirrored.value(), before + 7);
}

}  // namespace
}  // namespace scag::core
