// Tests for the benign workload generators.
#include <gtest/gtest.h>

#include <set>

#include "benign/registry.h"
#include "cpu/interpreter.h"

namespace scag::benign {
namespace {

class BenignTemplate : public ::testing::TestWithParam<BenignSpec> {};

TEST_P(BenignTemplate, BuildsValidatesAndHalts) {
  Rng rng(101);
  const isa::Program p = GetParam().build(rng);
  EXPECT_NO_THROW(p.validate());
  cpu::Interpreter interp;
  const cpu::RunResult r = interp.run(p);
  EXPECT_EQ(r.profile.exit, trace::ExitReason::kHalted)
      << GetParam().name << " retired=" << r.profile.retired;
  EXPECT_GT(r.profile.retired, 100u) << "suspiciously small workload";
  EXPECT_LT(r.profile.retired, 500'000u) << "workload too large for dataset";
}

TEST_P(BenignTemplate, HasNoGroundTruthAttackMarks) {
  Rng rng(102);
  const isa::Program p = GetParam().build(rng);
  EXPECT_TRUE(p.relevant_marks().empty());
}

TEST_P(BenignTemplate, DeterministicForSameSeed) {
  Rng a(7), b(7);
  const isa::Program p1 = GetParam().build(a);
  const isa::Program p2 = GetParam().build(b);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i)
    EXPECT_EQ(p1.at(i), p2.at(i)) << "instruction " << i;
  EXPECT_EQ(p1.initial_data(), p2.initial_data());
}

TEST_P(BenignTemplate, DifferentSeedsGiveDifferentPrograms) {
  Rng a(1), b(2);
  const isa::Program p1 = GetParam().build(a);
  const isa::Program p2 = GetParam().build(b);
  bool differs = p1.size() != p2.size();
  if (!differs) {
    for (std::size_t i = 0; i < p1.size() && !differs; ++i)
      differs = !(p1.at(i) == p2.at(i));
  }
  differs = differs || p1.initial_data() != p2.initial_data();
  EXPECT_TRUE(differs) << GetParam().name << " ignores its rng";
}

std::string template_name(const ::testing::TestParamInfo<BenignSpec>& info) {
  std::string n = info.param.name;
  for (char& c : n)
    if (c == '-') c = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, BenignTemplate,
                         ::testing::ValuesIn(all_benign_templates()),
                         template_name);

TEST(BenignRegistry, HasAllFourCategories) {
  std::set<std::string> categories;
  for (const BenignSpec& spec : all_benign_templates())
    categories.insert(spec.category);
  EXPECT_EQ(categories, (std::set<std::string>{"SPEC2006", "LeetCode",
                                               "Encryption", "Server"}));
}

TEST(BenignRegistry, GenerateCyclesTemplatesWithUniqueNames) {
  Rng rng(5);
  std::set<std::string> names;
  const std::size_t n = all_benign_templates().size() + 3;
  for (std::size_t i = 0; i < n; ++i) {
    const isa::Program p = generate_benign(i, rng);
    EXPECT_TRUE(names.insert(p.name()).second) << p.name();
  }
}

TEST(BenignRegistry, MemoryIntensityVaries) {
  // The paper stresses "different degrees of memory accesses": the corpus
  // must span at least an order of magnitude in cache-miss rate.
  Rng rng(9);
  std::vector<double> miss_rates;
  for (std::size_t i = 0; i < all_benign_templates().size(); ++i) {
    const isa::Program p = generate_benign(i, rng);
    cpu::Interpreter interp;
    const cpu::RunResult r = interp.run(p);
    miss_rates.push_back(
        static_cast<double>(r.profile.totals[trace::HpcEvent::kCacheMiss]) /
        static_cast<double>(r.profile.retired));
  }
  const auto [lo, hi] = std::minmax_element(miss_rates.begin(),
                                            miss_rates.end());
  EXPECT_GT(*hi, *lo * 10.0);
}

}  // namespace
}  // namespace scag::benign
