// Tests for the evaluation harness: metrics, dataset generation, task
// construction, and the experiment runners at reduced scale.
#include <gtest/gtest.h>

#include <set>

#include "eval/dataset.h"
#include "eval/experiments.h"
#include "eval/metrics.h"

namespace scag::eval {
namespace {

using core::Family;

// ---- Metrics ------------------------------------------------------------------

TEST(Metrics, PerfectPredictions) {
  ConfusionMatrix cm;
  cm.add(Family::kFlushReload, Family::kFlushReload);
  cm.add(Family::kBenign, Family::kBenign);
  const Prf p = cm.prf(Family::kFlushReload);
  EXPECT_DOUBLE_EQ(p.precision, 1.0);
  EXPECT_DOUBLE_EQ(p.recall, 1.0);
  EXPECT_DOUBLE_EQ(p.f1, 1.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(Metrics, FalsePositiveLowersPrecisionOnly) {
  ConfusionMatrix cm;
  cm.add(Family::kFlushReload, Family::kFlushReload);
  cm.add(Family::kBenign, Family::kFlushReload);  // benign flagged FR
  const Prf p = cm.prf(Family::kFlushReload);
  EXPECT_DOUBLE_EQ(p.precision, 0.5);
  EXPECT_DOUBLE_EQ(p.recall, 1.0);
}

TEST(Metrics, FalseNegativeLowersRecallOnly) {
  ConfusionMatrix cm;
  cm.add(Family::kFlushReload, Family::kFlushReload);
  cm.add(Family::kFlushReload, Family::kBenign);  // missed attack
  const Prf p = cm.prf(Family::kFlushReload);
  EXPECT_DOUBLE_EQ(p.precision, 1.0);
  EXPECT_DOUBLE_EQ(p.recall, 0.5);
}

TEST(Metrics, MacroAveragesOverRequestedClasses) {
  ConfusionMatrix cm;
  cm.add(Family::kFlushReload, Family::kFlushReload);   // FR perfect
  cm.add(Family::kPrimeProbe, Family::kBenign);         // PP missed
  const Prf macro = cm.macro({Family::kFlushReload, Family::kPrimeProbe});
  EXPECT_DOUBLE_EQ(macro.precision, 0.5);
  EXPECT_DOUBLE_EQ(macro.recall, 0.5);
}

TEST(Metrics, EmptyClassListGivesZeros) {
  ConfusionMatrix cm;
  cm.add(Family::kBenign, Family::kBenign);
  const Prf macro = cm.macro({});
  EXPECT_DOUBLE_EQ(macro.precision, 0.0);
}

TEST(Metrics, ZeroDenominatorsAreZeroNotNan) {
  ConfusionMatrix cm;  // empty
  const Prf p = cm.prf(Family::kFlushReload);
  EXPECT_DOUBLE_EQ(p.precision, 0.0);
  EXPECT_DOUBLE_EQ(p.recall, 0.0);
  EXPECT_DOUBLE_EQ(p.f1, 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

// ---- Dataset ------------------------------------------------------------------

DatasetConfig tiny_config() {
  DatasetConfig c;
  c.samples_per_type = 8;
  c.obfuscated_per_family = 4;
  return c;
}

TEST(Dataset, CountsMatchConfig) {
  const Dataset ds = generate_dataset(tiny_config());
  EXPECT_EQ(ds.attacks.size(), 4u * 8u);
  EXPECT_EQ(ds.obfuscated.size(), 2u * 4u);
  EXPECT_EQ(ds.benign.size(), 8u);
}

TEST(Dataset, EveryAttackSampleHasProfileAndFamily) {
  const Dataset ds = generate_dataset(tiny_config());
  std::set<Family> families;
  for (const Sample& s : ds.attacks) {
    families.insert(s.family);
    EXPECT_FALSE(s.obfuscated);
    EXPECT_EQ(s.profile.exit, trace::ExitReason::kHalted) << s.name;
    EXPECT_EQ(s.profile.per_instr.size(), s.program.size());
    EXPECT_GT(s.profile.samples.size(), 0u) << "sampling not enabled";
  }
  EXPECT_EQ(families.size(), 4u);
}

TEST(Dataset, ObfuscatedSamplesMarkedAndGrown) {
  const Dataset ds = generate_dataset(tiny_config());
  for (const Sample& s : ds.obfuscated) {
    EXPECT_TRUE(s.obfuscated);
    EXPECT_TRUE(s.family == Family::kFlushReload ||
                s.family == Family::kPrimeProbe);
  }
}

TEST(Dataset, DeterministicForSeed) {
  const Dataset a = generate_dataset(tiny_config());
  const Dataset b = generate_dataset(tiny_config());
  ASSERT_EQ(a.attacks.size(), b.attacks.size());
  for (std::size_t i = 0; i < a.attacks.size(); ++i) {
    EXPECT_EQ(a.attacks[i].name, b.attacks[i].name);
    EXPECT_EQ(a.attacks[i].program.size(), b.attacks[i].program.size());
    EXPECT_EQ(a.attacks[i].profile.cycles, b.attacks[i].profile.cycles);
  }
}

TEST(Dataset, DifferentSeedsDiffer) {
  DatasetConfig c1 = tiny_config(), c2 = tiny_config();
  c2.seed = 999;
  const Dataset a = generate_dataset(c1);
  const Dataset b = generate_dataset(c2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.attacks.size() && !any_diff; ++i)
    any_diff = a.attacks[i].program.size() != b.attacks[i].program.size() ||
               a.attacks[i].profile.cycles != b.attacks[i].profile.cycles;
  EXPECT_TRUE(any_diff);
}

TEST(Dataset, OfFamilyFilters) {
  const Dataset ds = generate_dataset(tiny_config());
  EXPECT_EQ(ds.of_family(Family::kFlushReload).size(), 8u);
  EXPECT_EQ(ds.of_family(Family::kFlushReload, true).size(), 12u);
  EXPECT_EQ(ds.of_family(Family::kBenign).size(), 8u);
}

// ---- Experiment runners at small scale ---------------------------------------

class ExperimentsAtSmallScale : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig c;
    c.samples_per_type = 20;
    c.obfuscated_per_family = 10;
    dataset_ = new Dataset(generate_dataset(c));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static const Dataset& dataset() { return *dataset_; }

 private:
  static const Dataset* dataset_;
};

const Dataset* ExperimentsAtSmallScale::dataset_ = nullptr;

TEST_F(ExperimentsAtSmallScale, BbIdentificationAboveNinetyPercentForFr) {
  const auto rows = run_bb_identification(dataset(), 10);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_GT(row.bb, row.iab) << row.family;
    EXPECT_GE(row.iab, row.itab) << row.family;
    EXPECT_GE(row.tab, row.itab) << row.family;
    EXPECT_GT(row.accuracy(), 0.6) << row.family;
  }
  EXPECT_GT(rows[0].accuracy(), 0.9);  // FR-F
}

TEST_F(ExperimentsAtSmallScale, ScenarioOrderingMatchesPaper) {
  const auto rows = run_scenarios();
  ASSERT_EQ(rows.size(), 5u);
  // All attacker-only scenarios score far above the benign one, and the
  // same-family comparisons (S1, S2) dominate the cross-vulnerability ones
  // (S3, S4). The paper additionally has S3 > S4; in our reproduction the
  // Spectre-FR PoC embeds FR's literal recovery loops, so S4 can edge past
  // S3 (see EXPERIMENTS.md).
  EXPECT_GT(rows[0].score, 0.66);                    // S1
  EXPECT_GT(rows[1].score, 0.66);                    // S2
  EXPECT_GT(rows[2].score, 0.66);                    // S3
  EXPECT_GT(rows[3].score, 0.60);                    // S4
  EXPECT_LT(rows[4].score, 0.16);                    // S5 (paper: 15.10%)
  EXPECT_GT(rows[0].score, rows[2].score);           // S1 > S3
  EXPECT_GT(rows[1].score, rows[3].score);           // S2 > S4
  EXPECT_GT(rows[3].score, rows[4].score);           // S4 >> S5
}

TEST_F(ExperimentsAtSmallScale, ScaguardWinsTableSixHeadline) {
  const Table6 t = run_classification(dataset());
  const auto& sg = t.results.at(Approach::kScaguard);
  // >90% precision on every "new variant" task (the paper's headline).
  EXPECT_GT(sg.at(Task::kE1).precision, 0.90);
  EXPECT_GT(sg.at(Task::kE2).precision, 0.90);
  EXPECT_GT(sg.at(Task::kE3_1).precision, 0.90);
  EXPECT_GT(sg.at(Task::kE3_2).precision, 0.90);
  EXPECT_GT(sg.at(Task::kE4).precision, 0.70);
  // SCADET fails on cross-family variants (Table VI: zeros).
  const auto& sc = t.results.at(Approach::kScadet);
  EXPECT_DOUBLE_EQ(sc.at(Task::kE3_1).recall, 0.0);
  EXPECT_DOUBLE_EQ(sc.at(Task::kE3_2).recall, 0.0);
  // SCAGuard beats SCADET everywhere.
  for (Task task : {Task::kE1, Task::kE2, Task::kE3_1, Task::kE3_2,
                    Task::kE4}) {
    EXPECT_GT(sg.at(task).f1, sc.at(task).f1);
  }
}

TEST_F(ExperimentsAtSmallScale, ThresholdSweepHasPaperPlateau) {
  const auto points =
      run_threshold_sweep(dataset(), {0.05, 0.30, 0.45, 0.60, 0.95});
  ASSERT_EQ(points.size(), 5u);
  // Thresholds in the 30%-60% band keep precision/recall high (Fig. 5).
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_GT(points[i].prf.precision, 0.85) << points[i].threshold;
    EXPECT_GT(points[i].prf.recall, 0.85) << points[i].threshold;
  }
  // An extreme threshold kills recall.
  EXPECT_LT(points[4].prf.recall, points[2].prf.recall);
  // A lax threshold cannot beat the plateau's precision.
  EXPECT_LE(points[0].prf.precision, points[2].prf.precision + 1e-9);
}

TEST_F(ExperimentsAtSmallScale, ScaguardHelperClassifiesKnownPoc) {
  const core::Detector d = make_scaguard({Family::kFlushReload});
  const Sample& fr = *dataset().of_family(Family::kFlushReload).front();
  EXPECT_EQ(scaguard_classify(d, fr), Family::kFlushReload);
  const Sample& ben = *dataset().of_family(Family::kBenign).front();
  EXPECT_EQ(scaguard_classify(d, ben), Family::kBenign);
}

TEST_F(ExperimentsAtSmallScale, BenignNeverInMetricClasses) {
  // The macro average is over attack classes only; benign contributes
  // false positives, not a class of its own. Verify via the sweep's
  // extreme threshold: at 0.99 recall collapses but precision cannot be
  // pulled up by benign true negatives.
  const auto points = run_threshold_sweep(dataset(), {0.99});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_LT(points[0].prf.recall, 0.9);
}

TEST_F(ExperimentsAtSmallScale, ClassificationIsDeterministic) {
  const Table6 a = run_classification(dataset(), 11);
  const Table6 b = run_classification(dataset(), 11);
  for (const auto& [approach, tasks] : a.results) {
    for (const auto& [task, prf] : tasks) {
      const Prf& other = b.results.at(approach).at(task);
      EXPECT_DOUBLE_EQ(prf.f1, other.f1)
          << approach_name(approach) << " " << task_name(task);
    }
  }
}

TEST_F(ExperimentsAtSmallScale, ThresholdSweepRecallIsMonotoneNonIncreasing) {
  std::vector<double> thresholds;
  for (double x = 0.1; x <= 0.91; x += 0.1) thresholds.push_back(x);
  const auto points = run_threshold_sweep(dataset(), thresholds);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LE(points[i].prf.recall, points[i - 1].prf.recall + 1e-12)
        << "threshold " << points[i].threshold;
}

TEST(ExperimentConfigs, CalibrationIsTheDocumentedOne) {
  const core::DtwConfig dtw = experiment_dtw_config();
  EXPECT_EQ(dtw.distance.alphabet, core::IsAlphabet::kSemanticWeighted);
  EXPECT_EQ(dtw.normalization, core::DtwNormalization::kPathAveraged);
  EXPECT_DOUBLE_EQ(dtw.cost_scale, 4.0);
  EXPECT_DOUBLE_EQ(dtw.gamma, 3.5);
  EXPECT_DOUBLE_EQ(dtw.length_penalty, 0.25);
  EXPECT_DOUBLE_EQ(kThreshold, 0.45);
}

}  // namespace
}  // namespace scag::eval
