// Tests for the support metrics layer (counters, histograms, scoped
// timers, registry snapshots) and the span tracer. Links against
// scag_support only, so the suite also builds in a -DSCAG_METRICS_OFF
// tree; assertions branch on Registry::compiled_in() where behavior
// legitimately differs between modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.h"
#include "support/trace.h"

namespace scag::support {
namespace {

// Minimal structural JSON validator: checks balanced braces/brackets and
// well-formed strings/escapes. Enough to catch broken hand-rolled
// emitters (unescaped quotes, trailing commas are NOT checked).
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      } else if (c == '\n' || c == '\r') {
        return false;  // raw control characters must be escaped
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::global().reset();
    set_metrics_enabled(true);
  }
  void TearDown() override {
    set_metrics_enabled(true);
    Registry::global().reset();
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(MetricsTest, CounterAccumulates) {
  Counter& c = Registry::global().counter("test.counter_accumulates");
  c.add();
  c.add(41);
  if (Registry::compiled_in()) {
    EXPECT_EQ(c.value(), 42u);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
}

TEST_F(MetricsTest, CounterRespectsRuntimeGate) {
  Counter& c = Registry::global().counter("test.counter_gate");
  set_metrics_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  set_metrics_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), Registry::compiled_in() ? 7u : 0u);
}

TEST_F(MetricsTest, RegistryReturnsSameInstrumentForSameName) {
  Counter& a = Registry::global().counter("test.same_name");
  Counter& b = Registry::global().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  Histogram& ha = Registry::global().histogram("test.same_hist");
  Histogram& hb = Registry::global().histogram("test.same_hist");
  EXPECT_EQ(&ha, &hb);
}

TEST_F(MetricsTest, HistogramRecordsAndSamples) {
  Histogram& h = Registry::global().histogram("test.hist_basic");
  h.record_ns(1);
  h.record_ns(100);
  h.record_ns(1'000'000);
  if (!Registry::compiled_in()) return;

  const MetricsSnapshot snap = Registry::global().snapshot();
  const HistogramSample* found = nullptr;
  for (const HistogramSample& s : snap.histograms)
    if (s.name == "test.hist_basic") found = &s;
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 3u);
  EXPECT_EQ(found->sum_ns, 1'000'101u);
  EXPECT_EQ(found->min_ns, 1u);
  EXPECT_EQ(found->max_ns, 1'000'000u);
  EXPECT_DOUBLE_EQ(found->mean_ns(), 1'000'101.0 / 3.0);
  // Three distinct power-of-two buckets, ascending, counts sum to 3.
  ASSERT_EQ(found->buckets.size(), 3u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < found->buckets.size(); ++i) {
    total += found->buckets[i].count;
    if (i > 0) {
      EXPECT_GT(found->buckets[i].upper_ns, found->buckets[i - 1].upper_ns);
    }
  }
  EXPECT_EQ(total, 3u);
}

TEST_F(MetricsTest, HistogramPercentiles) {
  if (!Registry::compiled_in()) return;
  Histogram& h = Registry::global().histogram("test.hist_pct");
  for (int i = 0; i < 90; ++i) h.record_ns(10);    // bucket upper 15
  for (int i = 0; i < 10; ++i) h.record_ns(1000);  // bucket upper 1023
  const HistogramSample s = h.sample("test.hist_pct");
  EXPECT_EQ(s.percentile_ns(0.5), 15u);
  // Bucket upper bounds are clamped to the observed max (1000 < 1023).
  EXPECT_EQ(s.percentile_ns(0.99), 1000u);
  EXPECT_EQ(s.percentile_ns(0.0), 15u);
  EXPECT_EQ(s.percentile_ns(1.0), 1000u);
  // Degenerate sample.
  HistogramSample empty;
  EXPECT_EQ(empty.percentile_ns(0.5), 0u);
  EXPECT_DOUBLE_EQ(empty.mean_ns(), 0.0);
}

TEST_F(MetricsTest, HistogramClampsOverflowIntoLastBucket) {
  if (!Registry::compiled_in()) return;
  Histogram& h = Registry::global().histogram("test.hist_clamp");
  h.record_ns(~std::uint64_t{0});  // far beyond 2^39 ns
  const HistogramSample s = h.sample("test.hist_clamp");
  ASSERT_EQ(s.buckets.size(), 1u);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max_ns, ~std::uint64_t{0});
}

TEST_F(MetricsTest, ScopedTimerRecordsElapsed) {
  Histogram& h = Registry::global().histogram("test.timer");
  {
    ScopedTimer t(h);
    // A little real work so the duration is non-zero.
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 1000; ++i) x = x + static_cast<std::uint64_t>(i);
    (void)x;
  }
  if (!Registry::compiled_in()) return;
  const HistogramSample s = h.sample("test.timer");
  EXPECT_EQ(s.count, 1u);
  EXPECT_GT(s.sum_ns, 0u);
}

TEST_F(MetricsTest, ScopedTimerSkipsClockWhenDisabled) {
  if (!Registry::compiled_in()) return;
  Histogram& h = Registry::global().histogram("test.timer_off");
  set_metrics_enabled(false);
  { ScopedTimer t(h); }
  set_metrics_enabled(true);
  EXPECT_EQ(h.sample("test.timer_off").count, 0u);
}

TEST_F(MetricsTest, ResetZeroesButKeepsNames) {
  Counter& c = Registry::global().counter("test.reset_me");
  Registry::global().histogram("test.reset_hist").record_ns(5);
  c.add(3);
  Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  if (!Registry::compiled_in()) return;
  // Names survive a reset so cached references stay valid and snapshots
  // keep a stable schema.
  const MetricsSnapshot snap = Registry::global().snapshot();
  bool saw_counter = false, saw_hist = false;
  for (const CounterSample& s : snap.counters)
    if (s.name == "test.reset_me") {
      saw_counter = true;
      EXPECT_EQ(s.value, 0u);
    }
  for (const HistogramSample& s : snap.histograms)
    if (s.name == "test.reset_hist") {
      saw_hist = true;
      EXPECT_EQ(s.count, 0u);
    }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

TEST_F(MetricsTest, ConcurrentCountingIsExact) {
  Counter& c = Registry::global().counter("test.concurrent");
  Histogram& h = Registry::global().histogram("test.concurrent_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record_ns(64);
      }
    });
  for (std::thread& t : threads) t.join();
  if (!Registry::compiled_in()) {
    EXPECT_EQ(c.value(), 0u);
    return;
  }
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.sample("test.concurrent_hist").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, ConcurrentRegistryLookupsAreSafe) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  Counter* expected = &Registry::global().counter("test.lookup_race");
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        Counter& c = Registry::global().counter("test.lookup_race");
        if (&c != expected) mismatches.fetch_add(1);
        c.add();
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(MetricsTest, SnapshotJsonIsWellFormed) {
  Registry::global().counter("test.json \"quoted\"\n").add(1);
  Registry::global().histogram("test.json_hist").record_ns(42);
  const std::string json = Registry::global().snapshot().to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  if (Registry::compiled_in()) {
    // The hostile name must appear escaped, never raw.
    EXPECT_EQ(json.find("test.json \"quoted\""), std::string::npos);
    EXPECT_NE(json.find("test.json \\\"quoted\\\"\\n"), std::string::npos);
  }
}

TEST_F(MetricsTest, SnapshotTableRenders) {
  Registry::global().counter("test.table").add(5);
  const std::string table = Registry::global().snapshot().to_table();
  EXPECT_FALSE(table.empty());
  if (Registry::compiled_in()) {
    EXPECT_NE(table.find("test.table"), std::string::npos);
  }
}

TEST_F(MetricsTest, EmptySnapshotTableSaysSo) {
  Registry::global().reset();
  const MetricsSnapshot empty;
  EXPECT_NE(empty.to_table().find("no metrics"), std::string::npos);
  EXPECT_TRUE(json_balanced(empty.to_json()));
}

// ---------------------------------------------------------------------------
// Tracer.

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(TracerTest, RecordsNestedSpans) {
  {
    TraceScope outer("outer");
    TraceScope inner("inner");
  }
  const std::vector<TraceSpan> spans = Tracer::global().spans();
  if (!Registry::compiled_in()) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_EQ(spans.size(), 2u);
  // Inner scope exits (and records) first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[1].dur_ns, spans[0].dur_ns);
}

TEST_F(TracerTest, DisabledScopesRecordNothing) {
  Tracer::global().set_enabled(false);
  { TraceScope s("ignored"); }
  EXPECT_TRUE(Tracer::global().spans().empty());
  EXPECT_EQ(Tracer::global().dropped(), 0u);
}

TEST_F(TracerTest, ClearDropsSpans) {
  { TraceScope s("to_clear"); }
  Tracer::global().clear();
  EXPECT_TRUE(Tracer::global().spans().empty());
}

TEST_F(TracerTest, JsonAndTableAreWellFormed) {
  { TraceScope s("stage.one"); }
  { TraceScope s("stage.one"); }
  { TraceScope s("stage.two"); }
  const std::string json = Tracer::global().to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  const std::string table = Tracer::global().to_table();
  EXPECT_FALSE(table.empty());
  if (Registry::compiled_in()) {
    EXPECT_NE(json.find("stage.one"), std::string::npos);
    EXPECT_NE(table.find("stage.two"), std::string::npos);
  }
}

// Chrome trace-event export: a structurally valid document with the
// traceEvents array and complete ("ph":"X") events, in both modes — the
// SCAG_METRICS_OFF no-op tracer still renders a valid, empty trace.
TEST_F(TracerTest, ChromeJsonIsWellFormed) {
  { TraceScope s("chrome.stage"); }
  const std::string json = Tracer::global().to_chrome_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  if (Registry::compiled_in()) {
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"chrome.stage\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  }
}

// Hostile span names must be escaped in BOTH exporters — a span name is
// attacker-influenced data (it can come from file paths), so a quote or
// control character in it must never break the JSON documents.
TEST_F(TracerTest, HostileSpanNamesAreEscapedInBothExporters) {
  if (!Registry::compiled_in()) return;
  { TraceScope s("evil\"span\\name\nwith\x02" "ctrl"); }
  for (const std::string& json :
       {Tracer::global().to_json(), Tracer::global().to_chrome_json()}) {
    EXPECT_TRUE(json_balanced(json)) << json;
    EXPECT_NE(json.find("evil\\\"span\\\\name\\nwith\\u0002ctrl"),
              std::string::npos)
        << json;
    EXPECT_EQ(json.find('\n'), std::string::npos);
  }
}

// The span store is capped: spans past Tracer::kMaxSpans are counted in
// dropped() instead of growing without bound, and every renderer surfaces
// the dropped count so a truncated capture is visible.
TEST_F(TracerTest, SpanCapCountsDropsAndSurfacesThem) {
  if (!Registry::compiled_in()) return;
  for (std::size_t i = 0; i < Tracer::kMaxSpans + 10; ++i) {
    TraceScope s("flood");
  }
  EXPECT_EQ(Tracer::global().spans().size(), Tracer::kMaxSpans);
  EXPECT_EQ(Tracer::global().dropped(), 10u);
  EXPECT_NE(Tracer::global().to_table().find("dropped 10"),
            std::string::npos);
  EXPECT_NE(Tracer::global().to_json().find("\"dropped\":10"),
            std::string::npos);
  EXPECT_NE(Tracer::global().to_chrome_json().find("\"dropped\":10"),
            std::string::npos);
  // clear() restarts the epoch and the drop counter.
  Tracer::global().clear();
  EXPECT_EQ(Tracer::global().dropped(), 0u);
}

// The table always states the capture bounds, even with nothing dropped —
// a capped store that silently stops recording must be distinguishable
// from "nothing else happened".
TEST_F(TracerTest, TableAlwaysStatesCaptureBounds) {
  if (!Registry::compiled_in()) return;
  { TraceScope s("bounded"); }
  const std::string table = Tracer::global().to_table();
  EXPECT_NE(table.find("spans kept 1 of cap"), std::string::npos) << table;
  EXPECT_NE(table.find("dropped 0"), std::string::npos) << table;
}

TEST_F(TracerTest, ConcurrentSpansGetDistinctThreadIndices) {
  if (!Registry::compiled_in()) return;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) TraceScope s("worker.span");
    });
  for (std::thread& t : threads) t.join();
  const std::vector<TraceSpan> spans = Tracer::global().spans();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * 50);
  for (const TraceSpan& s : spans) EXPECT_EQ(s.depth, 0u);
}

}  // namespace
}  // namespace scag::support
