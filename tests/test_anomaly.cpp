// Tests for the related-work detectors: anomaly (benign-only training) and
// the phased two-stage pipeline.
#include <gtest/gtest.h>

#include "attacks/registry.h"
#include "baselines/anomaly.h"
#include "benign/registry.h"
#include "cpu/interpreter.h"
#include "mutation/mutator.h"

namespace scag::baselines {
namespace {

trace::ExecutionProfile profile_of(const isa::Program& p) {
  cpu::ExecOptions opts;
  opts.sample_interval = 2000;
  opts.sample_noise = 0.1;
  cpu::Interpreter interp(opts);
  return interp.run(p).profile;
}

std::vector<trace::ExecutionProfile> benign_profiles(int n, Rng& rng) {
  std::vector<trace::ExecutionProfile> out;
  for (int i = 0; i < n; ++i) {
    Rng gen = rng.split();
    out.push_back(
        profile_of(benign::generate_benign(static_cast<std::size_t>(i), gen)));
  }
  return out;
}

TEST(Anomaly, TrainRejectsEmpty) {
  AnomalyDetector d;
  EXPECT_THROW(d.train({}), std::invalid_argument);
}

TEST(Anomaly, ScoreBeforeTrainThrows) {
  AnomalyDetector d;
  trace::ExecutionProfile p;
  EXPECT_THROW(d.score(p), std::logic_error);
}

TEST(Anomaly, FlagsMostAttacksWithoutAttackTraining) {
  Rng rng(5);
  AnomalyDetector d;
  d.train(benign_profiles(30, rng));

  int flagged = 0, total = 0;
  for (const auto& spec : attacks::all_pocs()) {
    attacks::PocConfig config;
    config.secret = 1 + rng.below(15);
    flagged += d.is_anomalous(profile_of(spec.build(config)));
    ++total;
  }
  EXPECT_GE(flagged, total / 2) << "anomaly detector misses too much";
}

TEST(Anomaly, BenignFalsePositiveRateIsNonTrivialButBounded) {
  // The paper's point: single-source anomaly detection pays FPs.
  Rng rng(6);
  AnomalyDetector d;
  d.train(benign_profiles(30, rng));
  int fp = 0, total = 0;
  for (int i = 30; i < 60; ++i) {
    Rng gen = rng.split();
    fp += d.is_anomalous(
        profile_of(benign::generate_benign(static_cast<std::size_t>(i), gen)));
    ++total;
  }
  EXPECT_LT(fp, total / 2);  // not useless...
}

TEST(Phased, GateThenClassify) {
  Rng rng(7);
  PhasedDetector d;
  std::vector<trace::ExecutionProfile> attack_profiles;
  std::vector<core::Family> labels;
  for (int i = 0; i < 16; ++i) {
    attacks::PocConfig config;
    config.secret = 1 + rng.below(15);
    const char* name = i % 2 ? "FR-IAIK" : "PP-IAIK";
    Rng mut = rng.split();
    attack_profiles.push_back(profile_of(
        mutation::mutate(attacks::poc_by_name(name).build(config), mut)));
    labels.push_back(i % 2 ? core::Family::kFlushReload
                           : core::Family::kPrimeProbe);
  }
  Rng train_rng(8);
  d.train(benign_profiles(24, rng), attack_profiles, labels, train_rng);

  // A fresh PP mutant: if the gate fires, the classifier should name PP.
  attacks::PocConfig config;
  config.secret = 3;
  Rng mut = rng.split();
  const auto verdict = d.classify(profile_of(
      mutation::mutate(attacks::poc_by_name("PP-Jzhang").build(config), mut)));
  if (verdict != core::Family::kBenign) {
    EXPECT_EQ(verdict, core::Family::kPrimeProbe);
  }
}

TEST(Phased, CleanBenignPassesGate) {
  Rng rng(9);
  PhasedDetector d;
  std::vector<trace::ExecutionProfile> attack_profiles;
  std::vector<core::Family> labels;
  for (int i = 0; i < 6; ++i) {
    attacks::PocConfig config;
    config.secret = 2;
    attack_profiles.push_back(
        profile_of(attacks::poc_by_name("FR-IAIK").build(config)));
    labels.push_back(core::Family::kFlushReload);
  }
  Rng train_rng(10);
  d.train(benign_profiles(24, rng), attack_profiles, labels, train_rng);
  // A bland arithmetic workload should pass the gate.
  Rng gen(11);
  const auto verdict = d.classify(profile_of(benign::fibonacci_dp(gen)));
  EXPECT_EQ(verdict, core::Family::kBenign);
}

}  // namespace
}  // namespace scag::baselines
