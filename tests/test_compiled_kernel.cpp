// Equivalence suite for the compiled CST-BBS kernel (core/compiled.h).
//
// The compiled fast path — interned token ids, precomputed features, and
// the memoized element-distance cache — promises BIT-IDENTICAL results to
// the string kernels. That contract is checked here the hard way:
// EXPECT_EQ on doubles (never EXPECT_NEAR), over sequences produced by
// the real modeling pipeline (attack PoCs, benign templates, mutated PoC
// variants, randomized programs), hand-built hostile sequences whose
// tokens the repository has never interned, both alphabets, and every
// configuration axis the DTW property suite covers:
//   - element distances, DTW distances, similarities;
//   - both lower-bound overloads and similarity upper bounds;
//   - bounded_similarity: same scores AND the same PruneKind decisions;
//   - Detector::scan with use_compiled() on vs off;
//   - BatchDetector scan_all, pruned and non-pruned, vs the string path;
//   - a serialize round trip feeding the compiled enrollment path;
//   - memo hit accounting (a scan with repeated blocks must hit).
#include <gtest/gtest.h>

#include "seed_util.h"

#include <cstddef>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/batch_detector.h"
#include "core/compiled.h"
#include "core/detector.h"
#include "core/dtw.h"
#include "core/model.h"
#include "core/serialize.h"
#include "eval/experiments.h"
#include "isa/normalize.h"
#include "isa/random_program.h"
#include "mutation/mutator.h"
#include "support/metrics.h"
#include "support/rng.h"

namespace scag::core {
namespace {

/// Same axes as tests/test_dtw_properties.cpp: paper-literal, calibrated,
/// banded, accumulated with penalty, path-averaged full tokens.
std::vector<DtwConfig> equivalence_configs() {
  std::vector<DtwConfig> configs;
  configs.push_back(DtwConfig{});
  configs.push_back(calibrated_dtw_config());

  DtwConfig banded = calibrated_dtw_config();
  banded.window = 2;
  configs.push_back(banded);

  DtwConfig accumulated;
  accumulated.window = 3;
  accumulated.length_penalty = 0.5;
  configs.push_back(accumulated);

  DtwConfig averaged;
  averaged.normalization = DtwNormalization::kPathAveraged;
  averaged.cost_scale = 2.0;
  configs.push_back(averaged);
  return configs;
}

/// A sequence the modeling pipeline would never emit: hand-built blocks
/// with tokens the repository interner has never seen (the shape a hostile
/// or newer-format deserialized target could take). The compiled path must
/// extend the id space locally and still agree bit for bit.
CstBbs hostile_sequence() {
  CstBbs s;
  CstBbsElement e1;
  e1.norm_instrs = {"alien op1, op2", "mov reg, mem", "alien op1, op2"};
  e1.sem_tokens = {"unknowable", "load", "unknowable"};
  e1.cst.after.ao = 3;
  s.push_back(e1);
  CstBbsElement e2;
  e2.norm_instrs = {"mov reg, mem"};
  e2.sem_tokens = {"load"};
  e2.cst.after.io = 5;
  s.push_back(e2);
  s.push_back(e1);  // repeated content: exercises target-side dedup
  return s;
}

class CompiledKernel : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    models_ = new std::vector<CstBbs>();
    targets_ = new std::vector<CstBbs>();
    const ModelBuilder builder;
    const attacks::PocConfig poc;

    // Repository side: real attack models.
    models_->push_back(builder.build(attacks::fr_iaik(poc)).sequence);
    models_->push_back(builder.build(attacks::pp_iaik(poc)).sequence);
    models_->push_back(builder.build(attacks::ff_iaik(poc)).sequence);
    models_->push_back(builder.build(attacks::spectre_fr_ideal(poc)).sequence);

    // Target side: the models themselves (self-scan), benign templates,
    // mutated PoC variants, random programs, an empty sequence, and the
    // hostile hand-built sequence.
    *targets_ = *models_;
    Rng benign_rng(99);
    targets_->push_back(builder.build(benign::aes_ttables(benign_rng)).sequence);
    targets_->push_back(
        builder.build(benign::flush_writeback(benign_rng)).sequence);
    Rng mut_rng(7);
    targets_->push_back(
        builder.build(mutation::mutate(attacks::fr_iaik(poc), mut_rng))
            .sequence);
    targets_->push_back(
        builder.build(mutation::mutate(attacks::pp_iaik(poc), mut_rng))
            .sequence);
    corpus_seed_ = testutil::test_seed(1234);
    Rng rng(corpus_seed_);
    for (int k = 0; k < 4; ++k) {
      Rng gen = rng.split();
      isa::RandomProgramOptions options;
      options.statements = 20 + 10 * k;
      targets_->push_back(
          builder.build(isa::random_program(gen, options)).sequence);
    }
    targets_->push_back(CstBbs{});
    targets_->push_back(hostile_sequence());
  }
  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
    delete targets_;
    targets_ = nullptr;
  }

  static std::vector<CstBbs>* models_;
  static std::vector<CstBbs>* targets_;
  static std::uint64_t corpus_seed_;
  // Fixture-lifetime trace: every failure in this suite reports the
  // corpus seed and how to replay it.
  ::testing::ScopedTrace seed_trace_{__FILE__, __LINE__,
                                     testutil::seed_note(corpus_seed_)};
};

std::vector<CstBbs>* CompiledKernel::models_ = nullptr;
std::vector<CstBbs>* CompiledKernel::targets_ = nullptr;
std::uint64_t CompiledKernel::corpus_seed_ = 0;

TEST_F(CompiledKernel, DistancesSimilaritiesAndBoundsAreBitIdentical) {
  for (const DtwConfig& config : equivalence_configs()) {
    CompiledRepository repo(config.distance);
    for (const CstBbs& m : *models_) repo.add(m);
    ASSERT_EQ(repo.num_models(), models_->size());

    for (std::size_t t = 0; t < targets_->size(); ++t) {
      const CstBbs& target = (*targets_)[t];
      const CompiledTarget ct = repo.compile_target(target);
      ASSERT_EQ(ct.seq.size(), target.size());
      ElementDistanceMemo memo(ct.unique_elements, repo.unique_elements());

      for (std::size_t j = 0; j < models_->size(); ++j) {
        const CstBbs& model = (*models_)[j];

        // Element distances (fresh memo misses AND repeat hits).
        for (int pass = 0; pass < 2; ++pass) {
          for (std::size_t i = 0; i < target.size(); ++i) {
            for (std::size_t k = 0; k < model.size(); ++k) {
              EXPECT_EQ(compiled_element_distance(ct, i, repo, j, k, memo,
                                                  config.distance, nullptr),
                        cst_distance(target[i], model[k], config.distance))
                  << "target " << t << " model " << j << " elem " << i << ","
                  << k;
            }
          }
        }

        EXPECT_EQ(
            compiled_cst_bbs_distance(ct, repo, j, memo, config, nullptr),
            cst_bbs_distance(target, model, config))
            << "target " << t << " model " << j;
        EXPECT_EQ(compiled_cst_bbs_distance_lower_bound(ct, repo, j, memo,
                                                        config, nullptr),
                  cst_bbs_distance_lower_bound(target, model, config))
            << "target " << t << " model " << j;
        EXPECT_EQ(compiled_similarity(ct, repo, j, memo, config),
                  similarity(target, model, config))
            << "target " << t << " model " << j;
      }
    }
  }
}

TEST_F(CompiledKernel, BoundedSimilarityMatchesScoresAndPruneDecisions) {
  const double cutoffs[] = {0.05, 0.2, 0.35, 0.45, 0.6, 0.75, 0.9};
  for (const DtwConfig& config : equivalence_configs()) {
    CompiledRepository repo(config.distance);
    for (const CstBbs& m : *models_) repo.add(m);
    for (std::size_t t = 0; t < targets_->size(); ++t) {
      const CstBbs& target = (*targets_)[t];
      const CompiledTarget ct = repo.compile_target(target);
      for (double cutoff : cutoffs) {
        // A fresh memo per cutoff keeps the comparison honest for the
        // early-abandon branch too (memo state cannot change scores, but
        // this also proves it does not change *decisions*).
        ElementDistanceMemo memo(ct.unique_elements, repo.unique_elements());
        for (std::size_t j = 0; j < models_->size(); ++j) {
          const BoundedScore expect =
              bounded_similarity(target, (*models_)[j], cutoff, config);
          const BoundedScore got =
              compiled_bounded_similarity(ct, repo, j, memo, cutoff, config);
          EXPECT_EQ(got.score, expect.score)
              << "target " << t << " model " << j << " cutoff " << cutoff;
          EXPECT_EQ(got.pruned, expect.pruned)
              << "target " << t << " model " << j << " cutoff " << cutoff;
        }
      }
    }
  }
}

/// The same Detector must produce identical Detections with the compiled
/// path on (default) and off, for every target shape.
TEST_F(CompiledKernel, DetectorScanIsBitIdenticalWithAndWithoutCompiled) {
  Detector compiled(eval::experiment_model_config(),
                    eval::experiment_dtw_config(), eval::kThreshold);
  Detector plain(eval::experiment_model_config(), eval::experiment_dtw_config(),
                 eval::kThreshold);
  plain.set_use_compiled(false);
  EXPECT_TRUE(compiled.use_compiled());
  EXPECT_FALSE(plain.use_compiled());

  const attacks::PocConfig poc;
  for (const attacks::PocSpec& spec : attacks::all_pocs()) {
    compiled.enroll(spec.build(poc), spec.family);
    plain.enroll(spec.build(poc), spec.family);
  }
  ASSERT_EQ(compiled.compiled_repository().num_models(),
            compiled.repository_size());

  for (std::size_t t = 0; t < targets_->size(); ++t) {
    const Detection a = compiled.scan((*targets_)[t]);
    const Detection b = plain.scan((*targets_)[t]);
    EXPECT_EQ(a.verdict, b.verdict) << "target " << t;
    EXPECT_EQ(a.best_score, b.best_score) << "target " << t;
    ASSERT_EQ(a.scores.size(), b.scores.size()) << "target " << t;
    for (std::size_t j = 0; j < a.scores.size(); ++j) {
      EXPECT_EQ(a.scores[j].model_name, b.scores[j].model_name)
          << "target " << t << " rank " << j;
      EXPECT_EQ(a.scores[j].score, b.scores[j].score)
          << "target " << t << " rank " << j;
    }
  }
}

TEST_F(CompiledKernel, BatchDetectorMatchesStringPathPrunedAndNot) {
  Detector detector(eval::experiment_model_config(),
                    eval::experiment_dtw_config(), eval::kThreshold);
  Detector oracle(eval::experiment_model_config(),
                  eval::experiment_dtw_config(), eval::kThreshold);
  oracle.set_use_compiled(false);
  const attacks::PocConfig poc;
  for (const attacks::PocSpec& spec : attacks::all_pocs()) {
    detector.enroll(spec.build(poc), spec.family);
    oracle.enroll(spec.build(poc), spec.family);
  }

  for (bool prune : {false, true}) {
    BatchConfig bc;
    bc.prune = prune;
    const BatchDetector batch(detector, bc);
    const std::vector<Detection> got = batch.scan_all(*targets_);
    ASSERT_EQ(got.size(), targets_->size());
    for (std::size_t t = 0; t < targets_->size(); ++t) {
      const Detection expect = oracle.scan((*targets_)[t]);
      EXPECT_EQ(got[t].verdict, expect.verdict)
          << "target " << t << " prune " << prune;
      if (!prune) {
        // Non-pruned mode: full bit-identical Detections.
        ASSERT_EQ(got[t].scores.size(), expect.scores.size());
        EXPECT_EQ(got[t].best_score, expect.best_score) << "target " << t;
        for (std::size_t j = 0; j < expect.scores.size(); ++j)
          EXPECT_EQ(got[t].scores[j].score, expect.scores[j].score)
              << "target " << t << " rank " << j;
      } else if (got[t].is_attack()) {
        // Pruned mode: attack verdicts keep exact best score and model.
        EXPECT_EQ(got[t].best_score, expect.best_score) << "target " << t;
        EXPECT_EQ(got[t].scores.front().model_name,
                  expect.scores.front().model_name)
            << "target " << t;
      }
    }
  }
}

/// Models that went through a save/load round trip enroll through the same
/// compiled path and must scan identically to the originals.
TEST_F(CompiledKernel, SerializeRoundTripPreservesCompiledScans) {
  const attacks::PocConfig poc;
  const ModelBuilder builder(eval::experiment_model_config());
  std::vector<AttackModel> originals;
  for (const attacks::PocSpec& spec : attacks::all_pocs())
    originals.push_back(builder.build(spec.build(poc), spec.family));

  Detector direct(eval::experiment_model_config(),
                  eval::experiment_dtw_config(), eval::kThreshold);
  for (const AttackModel& m : originals) direct.enroll(m);

  Detector reloaded(eval::experiment_model_config(),
                    eval::experiment_dtw_config(), eval::kThreshold);
  for (AttackModel& m :
       load_models_from_string(save_models_to_string(originals)))
    reloaded.enroll(std::move(m));

  for (std::size_t t = 0; t < targets_->size(); ++t) {
    const Detection a = direct.scan((*targets_)[t]);
    const Detection b = reloaded.scan((*targets_)[t]);
    EXPECT_EQ(a.verdict, b.verdict) << "target " << t;
    EXPECT_EQ(a.best_score, b.best_score) << "target " << t;
  }
}

TEST_F(CompiledKernel, MemoHitsOnRepeatedElementsAndCountersFlow) {
  const DtwConfig config = calibrated_dtw_config();
  CompiledRepository repo(config.distance);
  for (const CstBbs& m : *models_) repo.add(m);

  // The hostile sequence repeats a block verbatim; the repository models
  // repeat normalized blocks too, so a full scan must hit the memo.
  const CompiledTarget ct = repo.compile_target(hostile_sequence());
  EXPECT_LT(ct.unique_elements, ct.seq.size());  // dedup found the repeat
  ElementDistanceMemo memo(ct.unique_elements, repo.unique_elements());
  ElementDistanceMemo::Stats stats;
  for (std::size_t j = 0; j < repo.num_models(); ++j)
    compiled_similarity(ct, repo, j, memo, config, &stats);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.misses,
            static_cast<std::uint64_t>(ct.unique_elements) *
                repo.unique_elements());

  if (support::Registry::compiled_in()) {
    support::set_metrics_enabled(true);
    const auto counter_value = [](const char* name) {
      return support::Registry::global().counter(name).value();
    };
    const std::uint64_t hits0 = counter_value("compiled.memo_hits");
    const std::uint64_t misses0 = counter_value("compiled.memo_misses");
    flush_memo_stats(stats);
    EXPECT_EQ(counter_value("compiled.memo_hits"), hits0 + stats.hits);
    EXPECT_EQ(counter_value("compiled.memo_misses"), misses0 + stats.misses);
    EXPECT_GT(counter_value("compiled.models"), 0u);
    EXPECT_GT(counter_value("compiled.targets"), 0u);
  }
}

/// Interner sanity: ids are dense, stable, and carry the right attributes.
TEST_F(CompiledKernel, InternerTablesMatchTokenAttributes) {
  TokenInterner interner;
  const std::vector<std::string> tokens = {"flush", "load",  "store", "rmw",
                                           "fence", "call",  "ret",   "br",
                                           "jmp",   "time",  "flush"};
  for (const std::string& t : tokens) interner.intern(t);
  EXPECT_EQ(interner.size(), 10u);  // "flush" interned once
  EXPECT_EQ(interner.find("flush"), 0u);
  EXPECT_EQ(interner.find("never-seen"), TokenInterner::kNoToken);
  for (const std::string& t : tokens) {
    const TokenId id = interner.find(t);
    ASSERT_NE(id, TokenInterner::kNoToken);
    EXPECT_EQ(interner.weights()[id], isa::semantic_token_weight(t)) << t;
    EXPECT_EQ(interner.classes()[id],
              static_cast<std::uint8_t>(isa::semantic_token_class(t)))
        << t;
  }
}

}  // namespace
}  // namespace scag::core
