// Error-path CLI contract of scagctl (the path SCAG_SCAGCTL_PATH, set by
// tests/CMakeLists.txt): every failure — missing repository, unreadable
// target, injected fault — must produce a nonzero exit, exactly one
// "scagctl: ..." diagnostic line, no stack trace / abort, and no partial
// output files. Also sweeps the scagctl.* failpoints, which live in the
// CLI binary and are therefore out of reach of the in-process harness
// (tests/test_failpoints.cpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/events.h"
#include "support/failpoint.h"
#include "support/metrics.h"

#ifndef SCAG_SCAGCTL_PATH
#error "SCAG_SCAGCTL_PATH must be the scagctl binary (set by tests/CMakeLists.txt)"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved

  std::size_t lines() const {
    std::size_t n = 0;
    for (char c : output)
      if (c == '\n') ++n;
    return n;
  }
};

/// Runs scagctl through the shell. By default stderr is folded into
/// stdout; with `stderr_only` the progress output on stdout is dropped so
/// the capture is exactly the diagnostic stream (the one-line contract
/// applies to stderr — a failed scan may legitimately have printed
/// progress before hitting the error). `env_prefix` may carry VAR=value
/// assignments (e.g. SCAG_FAILPOINTS).
RunResult run_scagctl(const std::string& args,
                      const std::string& env_prefix = "",
                      bool stderr_only = false) {
  const std::string cmd = env_prefix + (env_prefix.empty() ? "" : " ") +
                          "'" + std::string(SCAG_SCAGCTL_PATH) + "' " + args +
                          (stderr_only ? " 2>&1 1>/dev/null" : " 2>&1");
  RunResult r;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return stat(path.c_str(), &st) == 0;
}

void expect_clean_one_line_error(const RunResult& r,
                                 const std::string& context) {
  EXPECT_NE(r.exit_code, 0) << context << "\n" << r.output;
  EXPECT_EQ(r.lines(), 1u)
      << context << ": expected exactly one diagnostic line, got:\n"
      << r.output;
  EXPECT_EQ(r.output.rfind("scagctl: ", 0), 0u)
      << context << ": diagnostic must start with 'scagctl: ':\n"
      << r.output;
  // A crash would print a terminate/abort banner, not our one-liner.
  EXPECT_EQ(r.output.find("terminate"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("Aborted"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("Segmentation"), std::string::npos) << r.output;
}

/// Shared artifacts: a valid repository and a valid attack target,
/// produced by the binary under test (their creation doubles as a smoke
/// test of the happy path).
class ScagctlCli : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process artifact names: ctest -j runs each case as its own
    // process, and all of them build this fixture concurrently.
    const std::string pid = std::to_string(getpid());
    repo_ = new std::string(::testing::TempDir() + "scag_cli_" + pid + ".repo");
    target_ =
        new std::string(::testing::TempDir() + "scag_cli_poc_" + pid + ".s");
    const RunResult build = run_scagctl("build-repo '" + *repo_ + "'");
    ASSERT_EQ(build.exit_code, 0) << build.output;
    const RunResult export_poc =
        run_scagctl("export FR-IAIK '" + *target_ + "'");
    ASSERT_EQ(export_poc.exit_code, 0) << export_poc.output;
  }
  static void TearDownTestSuite() {
    std::remove(repo_->c_str());
    std::remove(target_->c_str());
    delete repo_;
    delete target_;
    repo_ = nullptr;
    target_ = nullptr;
  }
  static std::string* repo_;
  static std::string* target_;
};

std::string* ScagctlCli::repo_ = nullptr;
std::string* ScagctlCli::target_ = nullptr;

TEST_F(ScagctlCli, MissingRepositoryIsOneCleanError) {
  const RunResult r = run_scagctl(
      "scan /no/such/dir/missing.repo '" + *target_ + "'", "",
      /*stderr_only=*/true);
  expect_clean_one_line_error(r, "missing repo");
}

TEST_F(ScagctlCli, MissingTargetIsOneCleanError) {
  const RunResult r = run_scagctl(
      "scan '" + *repo_ + "' /no/such/dir/missing.s", "",
      /*stderr_only=*/true);
  expect_clean_one_line_error(r, "missing target");
  EXPECT_NE(r.output.find("missing.s"), std::string::npos)
      << "diagnostic should name the offending file:\n"
      << r.output;
}

TEST_F(ScagctlCli, UnreadableTargetIsOneCleanError) {
  // A directory opens but cannot be parsed as assembly.
  const RunResult r =
      run_scagctl("scan '" + *repo_ + "' '" + ::testing::TempDir() + "'",
                  "", /*stderr_only=*/true);
  expect_clean_one_line_error(r, "directory as target");
}

TEST_F(ScagctlCli, BadFailpointSpecIsOneCleanError) {
  if (!scag::support::fp::compiled_in())
    GTEST_SKIP() << "built with SCAG_FAILPOINTS_OFF";
  const RunResult r =
      run_scagctl("'--failpoints=bogus' scan '" + *repo_ + "' '" + *target_ +
                      "'",
                  "", /*stderr_only=*/true);
  expect_clean_one_line_error(r, "malformed --failpoints");
  const RunResult unknown = run_scagctl(
      "'--failpoints=no.such.site=throw' scan '" + *repo_ + "' '" +
          *target_ + "'",
      "", /*stderr_only=*/true);
  expect_clean_one_line_error(unknown, "unknown failpoint name");
}

// The scagctl.* failpoint sweep: these sites live in the CLI binary, so
// the in-process harness exempts them; here each one is armed through the
// --failpoints flag and must surface as the standard one-line error.
TEST_F(ScagctlCli, CliFailpointsFireAndAreContained) {
  if (!scag::support::fp::compiled_in())
    GTEST_SKIP() << "built with SCAG_FAILPOINTS_OFF";
  for (const std::string& name : scag::support::fp::registered()) {
    if (name.rfind("scagctl.", 0) != 0) continue;
    SCOPED_TRACE(name);
    const RunResult r =
        run_scagctl("'--failpoints=" + name + "=throw' scan '" + *repo_ +
                        "' '" + *target_ + "'",
                    "", /*stderr_only=*/true);
    expect_clean_one_line_error(r, name);
    // The diagnostic proves the armed site actually fired.
    EXPECT_NE(r.output.find(name), std::string::npos) << r.output;
  }
}

TEST_F(ScagctlCli, FailpointsArmViaEnvironmentToo) {
  if (!scag::support::fp::compiled_in())
    GTEST_SKIP() << "built with SCAG_FAILPOINTS_OFF";
  // The retrying loader exhausts its attempts against a persistent open
  // fault; the terminal diagnostic is still a single clean line.
  const RunResult r =
      run_scagctl("scan '" + *repo_ + "' '" + *target_ + "'",
                  "SCAG_FAILPOINTS='serialize.load.open=error'",
                  /*stderr_only=*/true);
  expect_clean_one_line_error(r, "env-armed failpoint");
  EXPECT_NE(r.output.find("attempts"), std::string::npos)
      << "loader should report retry exhaustion:\n"
      << r.output;
}

TEST_F(ScagctlCli, FailedScanLeavesNoPartialStatsFile) {
  if (!scag::support::fp::compiled_in())
    GTEST_SKIP() << "built with SCAG_FAILPOINTS_OFF";
  const std::string stats = ::testing::TempDir() + "scag_cli_stats_" +
                            std::to_string(getpid()) + ".json";
  std::remove(stats.c_str());
  const RunResult r = run_scagctl(
      "'--failpoints=scagctl.load_target=throw' scan '--stats=" + stats +
      "' '" + *repo_ + "' '" + *target_ + "'");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_FALSE(file_exists(stats))
      << "a failed scan must not leave a partial stats file";
  EXPECT_FALSE(file_exists(stats + ".tmp"))
      << "a failed scan must clean up its tmp file";
  // And the happy path does write it (same invocation, nothing armed;
  // scanning an attack exits 1 by design, so only check the file).
  const RunResult ok = run_scagctl("scan '--stats=" + stats + "' '" + *repo_ +
                                   "' '" + *target_ + "'");
  EXPECT_TRUE(file_exists(stats)) << ok.output;
  std::remove(stats.c_str());
}

// ---------------------------------------------------------------------------
// Observability surfaces: scagctl explain, scan --explain=, --trace=
// (docs/observability.md).

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::string s, line;
  while (std::getline(in, line)) s += line + "\n";
  return s;
}

std::string slurp_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(ScagctlCli, ExplainCommandPrintsEvidenceAndWritesJson) {
  const std::string json = ::testing::TempDir() + "scag_cli_explain_" +
                           std::to_string(getpid()) + ".json";
  std::remove(json.c_str());
  const RunResult r = run_scagctl("explain '--json=" + json + "' '" + *repo_ +
                                  "' '" + *target_ + "'");
  EXPECT_EQ(r.exit_code, 0) << r.output;  // audit view: 0 even for attacks
  EXPECT_NE(r.output.find("Scan explanation:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Model evidence"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Rationale"), std::string::npos) << r.output;
  ASSERT_TRUE(file_exists(json)) << r.output;
  const std::string doc = slurp(json);
  EXPECT_NE(doc.find("\"schema\":\"scag-scan-report-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"path\":["), std::string::npos);
  std::remove(json.c_str());
}

TEST_F(ScagctlCli, ScanExplainFlagWritesReportsAndKeepsVerdictExit) {
  const std::string json = ::testing::TempDir() + "scag_cli_scanex_" +
                           std::to_string(getpid()) + ".json";
  std::remove(json.c_str());
  const RunResult r = run_scagctl("scan '--explain=" + json + "' '" + *repo_ +
                                  "' '" + *target_ + "'");
  EXPECT_EQ(r.exit_code, 1) << r.output;  // target is an attack PoC
  ASSERT_TRUE(file_exists(json)) << r.output;
  EXPECT_NE(slurp(json).find("\"schema\":\"scag-scan-report-v1\""),
            std::string::npos);
  std::remove(json.c_str());

  // A failed scan must not leave a partial (or any) explain file behind.
  const RunResult fail = run_scagctl("scan '--explain=" + json +
                                     "' /no/such/missing.repo '" + *target_ +
                                     "'");
  EXPECT_NE(fail.exit_code, 0);
  EXPECT_FALSE(file_exists(json));
  EXPECT_FALSE(file_exists(json + ".tmp"));
}

TEST_F(ScagctlCli, TraceFlagWritesChromeTraceFile) {
  const std::string trace = ::testing::TempDir() + "scag_cli_trace_" +
                            std::to_string(getpid()) + ".json";
  std::remove(trace.c_str());
  const RunResult r = run_scagctl("'--trace=" + trace + "' scan '" + *repo_ +
                                  "' '" + *target_ + "'");
  EXPECT_EQ(r.exit_code, 1) << r.output;  // verdict exit is unchanged
  ASSERT_TRUE(file_exists(trace)) << r.output;
  const std::string doc = slurp(trace);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  std::remove(trace.c_str());

  // A command that fails never leaves a trace file (full or partial).
  const RunResult fail = run_scagctl("'--trace=" + trace +
                                     "' scan /no/such/missing.repo '" +
                                     *target_ + "'");
  EXPECT_NE(fail.exit_code, 0);
  EXPECT_FALSE(file_exists(trace));
  EXPECT_FALSE(file_exists(trace + ".tmp"));
}

TEST_F(ScagctlCli, ExplainWithoutArgsIsUsageError) {
  const RunResult r = run_scagctl("explain");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("scagctl explain"), std::string::npos) << r.output;
}

// ---------------------------------------------------------------------------
// scag-store-v1 surfaces: scagctl repo pack / unpack / info, and scan
// accepting either repository format (docs/scan_architecture.md).

/// A per-test store packed from the shared fixture repository. Removed in
/// the destructor; tests mutate their own copy freely.
struct TempStore {
  std::string path;
  explicit TempStore(const std::string& repo, const std::string& tag) {
    path = ::testing::TempDir() + "scag_cli_" + tag + "_" +
           std::to_string(getpid()) + ".store";
    std::remove(path.c_str());
    const RunResult r =
        run_scagctl("repo pack '" + repo + "' '" + path + "'");
    EXPECT_EQ(r.exit_code, 0) << r.output;
  }
  ~TempStore() { std::remove(path.c_str()); }
};

TEST_F(ScagctlCli, RepoPackInfoUnpackRoundTrip) {
  const TempStore store(*repo_, "rt");
  const RunResult info = run_scagctl("repo info '" + store.path + "'");
  EXPECT_EQ(info.exit_code, 0) << info.output;
  EXPECT_NE(info.output.find("scag-store-v1"), std::string::npos)
      << info.output;
  EXPECT_NE(info.output.find("checksums OK"), std::string::npos)
      << info.output;
  EXPECT_NE(info.output.find("shard"), std::string::npos) << info.output;

  // unpack recovers the text form bit-exactly.
  const std::string back = ::testing::TempDir() + "scag_cli_back_" +
                           std::to_string(getpid()) + ".repo";
  std::remove(back.c_str());
  const RunResult unpack =
      run_scagctl("repo unpack '" + store.path + "' '" + back + "'");
  EXPECT_EQ(unpack.exit_code, 0) << unpack.output;
  EXPECT_EQ(slurp(back), slurp(*repo_))
      << "unpack(pack(repo)) must equal the original text repository";
  std::remove(back.c_str());
}

TEST_F(ScagctlCli, ScanAcceptsStoreAndMatchesTextVerdict) {
  const TempStore store(*repo_, "scan");
  const RunResult from_store =
      run_scagctl("scan '" + store.path + "' '" + *target_ + "'");
  const RunResult from_text =
      run_scagctl("scan '" + *repo_ + "' '" + *target_ + "'");
  EXPECT_EQ(from_store.exit_code, from_text.exit_code) << from_store.output;
  EXPECT_NE(from_store.output.find("scag-store-v1"), std::string::npos)
      << "store-backed scan should announce the format:\n"
      << from_store.output;
  // The scan report (everything from the table header on) is identical;
  // only the "repository:" banner differs.
  const std::size_t a = from_store.output.find("Scan report");
  const std::size_t b = from_text.output.find("Scan report");
  ASSERT_NE(a, std::string::npos) << from_store.output;
  ASSERT_NE(b, std::string::npos) << from_text.output;
  EXPECT_EQ(from_store.output.substr(a), from_text.output.substr(b));
}

TEST_F(ScagctlCli, RepoInfoOnTextRepositoryIsOneCleanError) {
  const RunResult r = run_scagctl("repo info '" + *repo_ + "'", "",
                                  /*stderr_only=*/true);
  expect_clean_one_line_error(r, "info on text repo");
}

TEST_F(ScagctlCli, TruncatedStoreIsOneCleanError) {
  const TempStore store(*repo_, "trunc");
  // Chop the image mid-section: everything structural after the header is
  // gone, so both the audit path and the scan path must reject cleanly.
  std::string bytes = slurp_bytes(store.path);
  ASSERT_GT(bytes.size(), 100u);
  write_bytes(store.path, bytes.substr(0, 100));
  expect_clean_one_line_error(
      run_scagctl("repo info '" + store.path + "'", "", /*stderr_only=*/true),
      "info on truncated store");
  expect_clean_one_line_error(
      run_scagctl("scan '" + store.path + "' '" + *target_ + "'", "",
                  /*stderr_only=*/true),
      "scan on truncated store");
}

TEST_F(ScagctlCli, VersionMismatchedStoreIsOneCleanError) {
  const TempStore store(*repo_, "ver");
  // The version field is the u32 at byte 8; a reader from this build must
  // name the unsupported version, not report a checksum failure (version
  // is checked before the header hash for exactly this diagnostic).
  std::string bytes = slurp_bytes(store.path);
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] = 0x63;
  write_bytes(store.path, bytes);
  const RunResult r = run_scagctl("repo info '" + store.path + "'", "",
                                  /*stderr_only=*/true);
  expect_clean_one_line_error(r, "version-mismatched store");
  EXPECT_NE(r.output.find("version"), std::string::npos)
      << "diagnostic should name the version mismatch:\n"
      << r.output;
}

TEST_F(ScagctlCli, RepoPackMissingInputIsOneCleanError) {
  const RunResult r = run_scagctl(
      "repo pack /no/such/dir/missing.repo /no/such/dir/out.store", "",
      /*stderr_only=*/true);
  expect_clean_one_line_error(r, "pack missing input");
}

TEST_F(ScagctlCli, RepoWithoutSubcommandIsUsageError) {
  const RunResult r = run_scagctl("repo");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("repo pack"), std::string::npos) << r.output;
}

// ---------------------------------------------------------------------------
// Scan-event journal surfaces: --journal=, events tail, top, stats
// serve/get, and the crash-path flight dump (docs/observability.md
// "Event journal").

TEST_F(ScagctlCli, JournalScanWritesSchemaJournalAndTailReadsIt) {
  if (!scag::support::events::EventJournal::compiled_in())
    GTEST_SKIP() << "built with SCAG_METRICS_OFF";
  const std::string journal = ::testing::TempDir() + "scag_cli_events_" +
                              std::to_string(getpid()) + ".jsonl";
  std::remove(journal.c_str());
  const RunResult r = run_scagctl("'--journal=" + journal + "' scan '" +
                                  *repo_ + "' '" + *target_ + "'");
  EXPECT_EQ(r.exit_code, 1) << r.output;  // verdict exit is unchanged
  EXPECT_NE(r.output.find("wrote event journal"), std::string::npos)
      << r.output;
  ASSERT_TRUE(file_exists(journal)) << r.output;
  const std::string doc = slurp(journal);
  EXPECT_EQ(doc.rfind("{\"schema\":\"scag-events-v1\"", 0), 0u)
      << "journal must open with the schema header:\n"
      << doc;
  EXPECT_NE(doc.find("\"type\":\"scan-start\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"type\":\"scan-verdict\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"summary\":true"), std::string::npos)
      << "journal must close with the accounting summary:\n"
      << doc;

  // `events tail --once` reads it back, filtered, and exits 0.
  const RunResult tail = run_scagctl("events tail --once --type=scan-verdict '" +
                                     journal + "'");
  EXPECT_EQ(tail.exit_code, 0) << tail.output;
  EXPECT_NE(tail.output.find("\"type\":\"scan-verdict\""), std::string::npos)
      << tail.output;
  EXPECT_EQ(tail.output.find("\"type\":\"scan-start\""), std::string::npos)
      << "--type filter must drop other event types:\n"
      << tail.output;
  std::remove(journal.c_str());
  std::remove((journal + ".flight").c_str());
}

TEST_F(ScagctlCli, ScanPromSnapshotFeedsTopOnce) {
  if (!scag::support::Registry::compiled_in())
    GTEST_SKIP() << "built with SCAG_METRICS_OFF";
  const std::string prom = ::testing::TempDir() + "scag_cli_prom_" +
                           std::to_string(getpid()) + ".prom";
  std::remove(prom.c_str());
  const RunResult r = run_scagctl("scan '--prom=" + prom + "' '" + *repo_ +
                                  "' '" + *target_ + "'");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  ASSERT_TRUE(file_exists(prom)) << r.output;
  const std::string doc = slurp(prom);
  EXPECT_NE(doc.find("# TYPE scag_scan_requests_total counter"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("scag_scan_latency_ns_bucket{le=\"+Inf\"}"),
            std::string::npos)
      << doc;

  const RunResult top = run_scagctl("top --once '" + prom + "'");
  EXPECT_EQ(top.exit_code, 0) << top.output;
  EXPECT_NE(top.output.find("scag top"), std::string::npos) << top.output;
  EXPECT_NE(top.output.find("prune ratio"), std::string::npos) << top.output;
  std::remove(prom.c_str());
}

TEST_F(ScagctlCli, StatsServeAndGetRoundTripOverUnixSocket) {
  if (!scag::support::Registry::compiled_in())
    GTEST_SKIP() << "built with SCAG_METRICS_OFF";
  const std::string sock = ::testing::TempDir() + "scag_cli_sock_" +
                           std::to_string(getpid()) + ".sock";
  std::remove(sock.c_str());
  // Serve exactly one request in the background, wait for the socket to
  // appear, then fetch it with the built-in client. The shell's exit code
  // is `stats get`'s.
  const RunResult r = run_scagctl(
      "stats serve '--socket=" + sock +
      "' --requests=1 --warm >/dev/null 2>&1 & i=0; while [ ! -S '" + sock +
      "' ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done; '" +
      std::string(SCAG_SCAGCTL_PATH) + "' stats get '--socket=" + sock + "'");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("# TYPE scag_"), std::string::npos)
      << "stats get should print 0.0.4 exposition text:\n"
      << r.output;
  EXPECT_NE(r.output.find("scag_batch_pairs_total"), std::string::npos)
      << "--warm must pre-populate the batch-scan series:\n"
      << r.output;
}

TEST_F(ScagctlCli, CrashWithJournalDumpsFlightRecorder) {
  if (!scag::support::fp::compiled_in() ||
      !scag::support::events::EventJournal::compiled_in())
    GTEST_SKIP() << "built with SCAG_FAILPOINTS_OFF or SCAG_METRICS_OFF";
  const std::string journal = ::testing::TempDir() + "scag_cli_crash_" +
                              std::to_string(getpid()) + ".jsonl";
  const std::string crash = journal + ".crash";
  std::remove(journal.c_str());
  std::remove(crash.c_str());
  const RunResult r = run_scagctl("'--journal=" + journal +
                                  "' '--failpoints=scagctl.load_target=throw'"
                                  " scan '" +
                                  *repo_ + "' '" + *target_ + "'");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("flight recorder dumped"), std::string::npos)
      << r.output;
  ASSERT_TRUE(file_exists(crash)) << r.output;
  const std::string dump = slurp(crash);
  EXPECT_EQ(dump.rfind("{\"schema\":\"scag-flight-v1\"", 0), 0u) << dump;
  EXPECT_NE(dump.find("\"type\":\"failpoint-hit\""), std::string::npos)
      << "the crash dump should show the failpoint that fired:\n"
      << dump;
  std::remove(journal.c_str());
  std::remove((journal + ".flight").c_str());
  std::remove(crash.c_str());
}

}  // namespace
