// The parallel batch-scan engine's contract (see core/batch_detector.h):
//   - support::ThreadPool runs every index exactly once and propagates
//     exceptions;
//   - BatchDetector with pruning disabled returns Detections bit-identical
//     to the serial Detector at 1, 2, and 8 threads, over the full
//     attack + benign registries, on every run (determinism);
//   - BatchDetector with pruning enabled preserves the verdict always and
//     the best match exactly whenever the verdict is an attack, and every
//     pruned entry's exact score is indeed below the pruning cutoff.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "support/thread_pool.h"

namespace scag::core {
namespace {

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleLaneDegeneratesToSerial) {
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.parallel_for(8, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // no lock needed: one lane
  });
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, CoarseGrainAndEmptyRangeWork) {
  support::ThreadPool pool(3);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "fn called for n=0"; });
  std::vector<std::atomic<int>> hits(10);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
                    /*grain=*/64);  // grain larger than n
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  support::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives an exception and stays usable.
  std::atomic<int> n{0};
  pool.parallel_for(50, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 50);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  support::ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(64, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 64) << "round " << round;
  }
}

// ---- BatchDetector vs serial Detector -------------------------------------

/// Shared corpus: a detector with ALL collected PoCs enrolled, and targets
/// covering the full attack registry plus every benign template.
class ParallelScan : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    detector_ = new Detector(ModelConfig{}, calibrated_dtw_config(), 0.45);
    for (const attacks::PocSpec& spec : attacks::all_pocs())
      detector_->enroll(spec.build(attacks::PocConfig{}), spec.family);

    targets_ = new std::vector<CstBbs>();
    const ModelBuilder& builder = detector_->builder();
    for (const attacks::PocSpec& spec : attacks::all_pocs()) {
      targets_->push_back(
          builder.build(spec.build(attacks::PocConfig{})).sequence);
    }
    Rng rng(2026);
    for (const benign::BenignSpec& spec : benign::all_benign_templates()) {
      Rng gen = rng.split();
      targets_->push_back(builder.build(spec.build(gen)).sequence);
    }
  }
  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    delete targets_;
    targets_ = nullptr;
  }

  static std::vector<Detection> serial_reference() {
    std::vector<Detection> out;
    out.reserve(targets_->size());
    for (const CstBbs& t : *targets_) out.push_back(detector_->scan(t));
    return out;
  }

  static void expect_identical(const Detection& got, const Detection& want,
                               const std::string& context) {
    EXPECT_EQ(got.verdict, want.verdict) << context;
    EXPECT_EQ(got.best_score, want.best_score) << context;
    ASSERT_EQ(got.scores.size(), want.scores.size()) << context;
    for (std::size_t j = 0; j < want.scores.size(); ++j) {
      EXPECT_EQ(got.scores[j].model_name, want.scores[j].model_name)
          << context << " rank " << j;
      EXPECT_EQ(got.scores[j].family, want.scores[j].family)
          << context << " rank " << j;
      EXPECT_EQ(got.scores[j].score, want.scores[j].score)
          << context << " rank " << j;  // bit-identical, no tolerance
      EXPECT_FALSE(got.scores[j].pruned) << context << " rank " << j;
    }
  }

  static Detector* detector_;
  static std::vector<CstBbs>* targets_;
};

Detector* ParallelScan::detector_ = nullptr;
std::vector<CstBbs>* ParallelScan::targets_ = nullptr;

TEST_F(ParallelScan, MatchesSerialAtEveryThreadCount) {
  const std::vector<Detection> want = serial_reference();
  for (std::size_t threads : {1u, 2u, 8u}) {
    BatchConfig config;
    config.threads = threads;
    const BatchDetector batch(*detector_, config);
    const std::vector<Detection> got = batch.scan_all(*targets_);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_identical(got[i], want[i],
                       "threads=" + std::to_string(threads) + " target " +
                           std::to_string(i));
    }
  }
}

TEST_F(ParallelScan, DeterministicAcrossRuns) {
  BatchConfig config;
  config.threads = 8;
  const BatchDetector batch(*detector_, config);
  // Two full runs through the engine must agree with each other (and with
  // the serial path, covered above) despite dynamic work distribution.
  const std::vector<Detection> first = batch.scan_all(*targets_);
  const std::vector<Detection> second = batch.scan_all(*targets_);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    expect_identical(second[i], first[i], "rerun target " + std::to_string(i));
}

TEST_F(ParallelScan, PrunedScanPreservesVerdictAndBestMatch) {
  const std::vector<Detection> want = serial_reference();
  BatchConfig config;
  config.threads = 8;
  config.prune = true;
  const BatchDetector batch(*detector_, config);
  const std::vector<Detection> got = batch.scan_all(*targets_);
  ASSERT_EQ(got.size(), want.size());

  for (std::size_t i = 0; i < want.size(); ++i) {
    const std::string context = "target " + std::to_string(i);
    EXPECT_EQ(got[i].verdict, want[i].verdict) << context;
    if (want[i].is_attack()) {
      // The best match survives pruning bit-exactly.
      EXPECT_EQ(got[i].best_score, want[i].best_score) << context;
      ASSERT_FALSE(got[i].scores.empty());
      EXPECT_EQ(got[i].scores.front().model_name,
                want[i].scores.front().model_name)
          << context;
      EXPECT_FALSE(got[i].scores.front().pruned) << context;
    }
    // Per-model invariants, matched by name against the serial scores.
    const double cutoff =
        std::max(detector_->threshold(), want[i].best_score);
    for (const ModelScore& s : got[i].scores) {
      const auto it = std::find_if(
          want[i].scores.begin(), want[i].scores.end(),
          [&](const ModelScore& w) { return w.model_name == s.model_name; });
      ASSERT_NE(it, want[i].scores.end()) << context;
      if (s.pruned) {
        // Pruning is sound: the exact score really is below the cutoff,
        // and so is the reported upper bound.
        EXPECT_LT(it->score, cutoff) << context << " model " << s.model_name;
        EXPECT_LT(s.score, cutoff) << context << " model " << s.model_name;
        EXPECT_GE(s.score, it->score - 1e-12)
            << context << " model " << s.model_name
            << ": reported bound fell below the exact score";
      } else {
        EXPECT_EQ(s.score, it->score) << context << " model " << s.model_name;
      }
    }
  }

  const BatchStats stats = batch.stats();
  EXPECT_EQ(stats.pairs, targets_->size() * detector_->repository_size());
  EXPECT_EQ(stats.exact + stats.lb_skipped + stats.early_abandoned,
            stats.pairs);
}

TEST_F(ParallelScan, PrunedScanIsDeterministic) {
  BatchConfig config;
  config.threads = 8;
  config.prune = true;
  const BatchDetector batch(*detector_, config);
  const std::vector<Detection> first = batch.scan_all(*targets_);
  const std::vector<Detection> second = batch.scan_all(*targets_);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].verdict, second[i].verdict);
    EXPECT_EQ(first[i].best_score, second[i].best_score);
    ASSERT_EQ(first[i].scores.size(), second[i].scores.size());
    for (std::size_t j = 0; j < first[i].scores.size(); ++j) {
      EXPECT_EQ(first[i].scores[j].score, second[i].scores[j].score);
      EXPECT_EQ(first[i].scores[j].pruned, second[i].scores[j].pruned);
    }
  }
  // Pruning decisions are scheduling-independent, so the counters agree
  // between the two identical runs.
  const BatchStats stats = batch.stats();
  EXPECT_EQ(stats.lb_skipped % 2, 0u);
  EXPECT_EQ(stats.early_abandoned % 2, 0u);
  EXPECT_EQ(stats.exact % 2, 0u);
}

TEST_F(ParallelScan, ScanProgramsMatchesSerialFullPipeline) {
  std::vector<isa::Program> programs;
  programs.push_back(attacks::fr_iaik(attacks::PocConfig{}));
  programs.push_back(attacks::pp_jzhang(attacks::PocConfig{}));
  Rng rng(7);
  programs.push_back(benign::generate_benign(0, rng));
  programs.push_back(benign::generate_benign(1, rng));

  std::vector<Detection> want;
  for (const isa::Program& p : programs) want.push_back(detector_->scan(p));

  BatchConfig config;
  config.threads = 4;
  const BatchDetector batch(*detector_, config);
  const std::vector<Detection> got = batch.scan_programs(programs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    expect_identical(got[i], want[i], "program " + std::to_string(i));
}

TEST(BatchDetectorEdge, EmptyRepositoryAndEmptyTargetList) {
  const Detector detector(ModelConfig{}, calibrated_dtw_config(), 0.45);
  const BatchDetector batch(detector, BatchConfig{.threads = 2});
  EXPECT_TRUE(batch.scan_all({}).empty());
  const std::vector<Detection> dets =
      batch.scan_all(std::vector<CstBbs>(3));  // 3 empty targets, 0 models
  ASSERT_EQ(dets.size(), 3u);
  for (const Detection& d : dets) {
    EXPECT_FALSE(d.is_attack());
    EXPECT_TRUE(d.scores.empty());
    EXPECT_EQ(d.best_score, 0.0);
  }
}

}  // namespace
}  // namespace scag::core
