// Differential + unit suite for the sublinear scan subsystem
// (core/scan_index.h): the k-NN triage index, the lower-bound cascade,
// and their wiring through Detector::use_index(), BatchConfig::index, and
// the degrading outcome APIs.
//
// The headline tests drive the reusable harness of
// tests/differential_scan.h: every cascaded path (serial/batch, string/
// compiled kernels, multiple thread counts, three thresholds spanning
// attack and benign verdicts) must produce a Detection that is
// verdict-equivalent — same verdict, bit-identical best_score, same
// winning model — to an exhaustive string-kernel oracle that shares no
// code with the fast paths. The unit tests pin the index's determinism
// (scan_order is a stable permutation), the triage-first ordering, the
// cascade's stats bookkeeping, its order validation, and graceful
// degradation when the compiled target compilation is fault-injected.
#include <gtest/gtest.h>

#include "differential_scan.h"
#include "seed_util.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/batch_detector.h"
#include "core/detector.h"
#include "core/scan_index.h"
#include "isa/random_program.h"
#include "mutation/mutator.h"
#include "support/failpoint.h"
#include "support/rng.h"

namespace scag::core {
namespace {

namespace fp = support::fp;

/// One representative PoC per attack family, like the golden corpus.
Detector make_detector(DtwConfig dtw, double threshold) {
  Detector detector(ModelConfig{}, dtw, threshold);
  for (const char* name :
       {"FR-IAIK", "PP-IAIK", "Spectre-FR-Ideal", "Spectre-PP-Trippel"}) {
    const attacks::PocSpec& spec = attacks::poc_by_name(name);
    detector.enroll(spec.build(attacks::PocConfig{}), spec.family);
  }
  return detector;
}

/// Target mix spanning every verdict shape: enrolled attacks (score 1),
/// unseen variants, an unseen family, benign programs, mutated PoCs,
/// seeded random programs, the empty sequence, and a hand-built hostile
/// sequence with never-interned tokens.
std::vector<CstBbs> make_targets(std::uint64_t seed) {
  const ModelBuilder builder;
  const attacks::PocConfig poc;
  std::vector<CstBbs> targets;
  for (const char* name : {"FR-IAIK", "PP-Jzhang", "FF-IAIK"})
    targets.push_back(
        builder.build(attacks::poc_by_name(name).build(poc)).sequence);
  Rng benign_rng(99);
  targets.push_back(builder.build(benign::aes_ttables(benign_rng)).sequence);
  targets.push_back(
      builder.build(benign::flush_writeback(benign_rng)).sequence);
  Rng mut_rng(7);
  targets.push_back(
      builder.build(mutation::mutate(attacks::pp_iaik(poc), mut_rng))
          .sequence);
  Rng rng(seed);
  for (int k = 0; k < 2; ++k) {
    Rng gen = rng.split();
    isa::RandomProgramOptions options;
    options.statements = 20 + 10 * k;
    targets.push_back(
        builder.build(isa::random_program(gen, options)).sequence);
  }
  targets.push_back(CstBbs{});
  CstBbs hostile;
  CstBbsElement alien;
  alien.norm_instrs = {"alien op1, op2", "mov reg, mem"};
  alien.sem_tokens = {"unknowable", "load"};
  alien.cst.after.ao = 3;
  hostile.push_back(alien);
  hostile.push_back(alien);
  targets.push_back(hostile);
  return targets;
}

class ScanIndexSuite : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_seed_ = testutil::test_seed(4242);
    targets_ = new std::vector<CstBbs>(make_targets(corpus_seed_));
  }
  static void TearDownTestSuite() {
    delete targets_;
    targets_ = nullptr;
  }

  static std::vector<CstBbs>* targets_;
  static std::uint64_t corpus_seed_;
  ::testing::ScopedTrace seed_trace_{__FILE__, __LINE__,
                                     testutil::seed_note(corpus_seed_)};
};

std::vector<CstBbs>* ScanIndexSuite::targets_ = nullptr;
std::uint64_t ScanIndexSuite::corpus_seed_ = 0;

// ---------------------------------------------------------------------------
// Differential matrix: the equal-headline harness.

/// Calibrated config, three thresholds spanning the verdict space (below,
/// at, and above the paper's 45%), both kernels, threads {1, 2, 8}.
TEST_F(ScanIndexSuite, DifferentialMatrixCalibratedAlphabet) {
  for (double threshold : {0.2, 0.45, 0.7}) {
    Detector detector = make_detector(calibrated_dtw_config(), threshold);
    testutil::run_differential_matrix(
        detector, *targets_, "calibrated/thr" + std::to_string(threshold),
        {1, 2, 8});
  }
}

/// Paper-literal full-token alphabet, default normalization.
TEST_F(ScanIndexSuite, DifferentialMatrixFullTokenAlphabet) {
  Detector detector = make_detector(DtwConfig{}, 0.45);
  testutil::run_differential_matrix(detector, *targets_, "full-tokens",
                                    {1, 2, 8});
}

/// A banded window changes the DP (and the bounds must respect it); the
/// equivalence contract still holds.
TEST_F(ScanIndexSuite, DifferentialMatrixBandedWindow) {
  DtwConfig banded = calibrated_dtw_config();
  banded.window = 2;
  Detector detector = make_detector(banded, 0.45);
  testutil::run_differential_matrix(detector, *targets_, "banded", {1, 2});
}

/// Degradation path: with compiled target compilation fault-injected, the
/// indexed scan falls back to the string-kernel cascade and stays
/// verdict-equivalent (the string twin is bit-identical by construction).
TEST_F(ScanIndexSuite, DifferentialUnderCompileTargetFaults) {
  if (!fp::compiled_in()) GTEST_SKIP() << "built with SCAG_FAILPOINTS_OFF";
  Detector detector = make_detector(calibrated_dtw_config(), 0.45);
  detector.set_use_index(true);
  std::vector<Detection> oracles;
  for (const CstBbs& t : *targets_)
    oracles.push_back(testutil::exhaustive_oracle(detector, t));

  fp::disarm_all();
  fp::arm_from_string("compiled.compile_target=throw");
  for (std::size_t i = 0; i < targets_->size(); ++i)
    testutil::expect_detection_equivalent(
        oracles[i], detector.scan((*targets_)[i]),
        "degraded/serial/target" + std::to_string(i));
  BatchConfig config;
  config.threads = 2;
  config.index = true;
  const BatchDetector batch(detector, config);
  const std::vector<Detection> got = batch.scan_all(*targets_);
  for (std::size_t i = 0; i < targets_->size(); ++i)
    testutil::expect_detection_equivalent(
        oracles[i], got[i], "degraded/batch/target" + std::to_string(i));
  fp::disarm_all();
}

/// The outcome API routes through the cascade when BatchConfig::index is
/// set: successful outcomes are verdict-equivalent, an armed
/// batch.scan_target failpoint isolates errors per target, and nothing
/// leaks across slots.
TEST_F(ScanIndexSuite, OutcomeApiRunsCascadeAndIsolatesFaults) {
  Detector detector = make_detector(calibrated_dtw_config(), 0.45);
  detector.set_use_index(true);
  BatchConfig config;
  config.threads = 2;
  config.index = true;
  const BatchDetector batch(detector, config);

  const std::vector<ScanOutcome> ok = batch.scan_all_outcomes(*targets_);
  ASSERT_EQ(ok.size(), targets_->size());
  for (std::size_t i = 0; i < targets_->size(); ++i) {
    ASSERT_TRUE(ok[i].ok()) << ok[i].error;
    testutil::expect_detection_equivalent(
        testutil::exhaustive_oracle(detector, (*targets_)[i]),
        ok[i].detection, "outcome/target" + std::to_string(i));
  }

  if (!fp::compiled_in()) return;
  fp::disarm_all();
  fp::arm_from_string("batch.scan_target=throw@2");  // every 2nd scan fails
  const std::vector<ScanOutcome> faulted = batch.scan_all_outcomes(*targets_);
  std::size_t errors = 0;
  for (const ScanOutcome& o : faulted) {
    if (o.ok()) continue;
    ++errors;
    EXPECT_EQ(o.status, ScanStatus::kError);
    EXPECT_EQ(o.failpoint, "batch.scan_target");
  }
  EXPECT_GT(errors, 0u);
  EXPECT_LT(errors, faulted.size());  // the batch always partially succeeds
  fp::disarm_all();
}

// ---------------------------------------------------------------------------
// ScanIndex unit tests.

TEST_F(ScanIndexSuite, ScanOrderIsDeterministicPermutation) {
  Detector detector = make_detector(calibrated_dtw_config(), 0.45);
  const ScanIndex& index = detector.scan_index();
  ASSERT_EQ(index.size(), detector.repository_size());
  for (const CstBbs& t : *targets_) {
    const SequenceFeatures tf =
        compute_sequence_features(t, detector.dtw_config().distance);
    const std::vector<std::uint32_t> order = index.scan_order(tf, t.size());
    ASSERT_EQ(order.size(), index.size());
    std::vector<std::uint32_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t j = 0; j < sorted.size(); ++j)
      EXPECT_EQ(sorted[j], j);  // a permutation of [0, size)
    EXPECT_EQ(order, index.scan_order(tf, t.size()));  // and a stable one
  }
}

/// With a 1-NN index, a self-scan's nearest neighbor is the model itself
/// (coarse distance 0), so the prediction must be its own family and the
/// visit order must start inside that family. (The default k=3 vote over
/// four single-member families always ties, so this property is pinned at
/// k=1 where it is exact.)
TEST_F(ScanIndexSuite, SelfScanWithOneNeighborPredictsOwnFamily) {
  Detector detector = make_detector(calibrated_dtw_config(), 0.45);
  const std::vector<AttackModel>& repo = detector.repository();
  ScanIndex index(/*k=*/1);
  for (const AttackModel& m : repo)
    index.add(compute_sequence_features(m.sequence,
                                        detector.dtw_config().distance),
              m.sequence.size(), m.family);
  for (std::size_t j = 0; j < repo.size(); ++j) {
    const SequenceFeatures f = compute_sequence_features(
        repo[j].sequence, detector.dtw_config().distance);
    const Family predicted = index.predict_family(f, repo[j].sequence.size());
    EXPECT_EQ(predicted, repo[j].family) << repo[j].name;
    const std::vector<std::uint32_t> order =
        index.scan_order(f, repo[j].sequence.size());
    ASSERT_FALSE(order.empty());
    EXPECT_EQ(order.front(), j) << repo[j].name;  // itself, distance 0
  }
}

/// Detector-level consistency: whatever the k=3 vote predicts, the scan
/// order's first group is that family.
TEST_F(ScanIndexSuite, ScanOrderVisitsPredictedFamilyFirst) {
  Detector detector = make_detector(calibrated_dtw_config(), 0.45);
  const ScanIndex& index = detector.scan_index();
  const std::vector<AttackModel>& repo = detector.repository();
  for (const CstBbs& t : *targets_) {
    const SequenceFeatures tf =
        compute_sequence_features(t, detector.dtw_config().distance);
    const Family predicted = index.predict_family(tf, t.size());
    const std::vector<std::uint32_t> order = index.scan_order(tf, t.size());
    ASSERT_FALSE(order.empty());
    // All models of the predicted family precede every other family.
    bool left_group = false;
    for (std::uint32_t j : order) {
      if (repo[j].family != predicted) left_group = true;
      else EXPECT_FALSE(left_group) << "predicted-family model " << j
                                    << " visited after another family";
    }
  }
}

TEST_F(ScanIndexSuite, EmptyIndexPredictsBenignAndYieldsEmptyOrder) {
  const ScanIndex index;
  EXPECT_TRUE(index.empty());
  const SequenceFeatures f;
  EXPECT_EQ(index.predict_family(f, 0), Family::kBenign);
  EXPECT_TRUE(index.scan_order(f, 0).empty());
}

/// Every triage vector is finite — including the empty sequence, whose
/// raw SequenceFeatures envelopes are +-infinity.
TEST_F(ScanIndexSuite, TriageFeaturesAreAlwaysFinite) {
  const DistanceConfig alphabet;
  for (const CstBbs& t : *targets_) {
    const ml::FeatureVector v =
        triage_features(compute_sequence_features(t, alphabet), t.size());
    ASSERT_EQ(v.size(), 9u);
    for (double x : v) EXPECT_TRUE(std::isfinite(x));
  }
}

// ---------------------------------------------------------------------------
// Cascade unit tests.

TEST_F(ScanIndexSuite, CascadeStatsAddUpAndFirstVisitIsExact) {
  Detector detector = make_detector(calibrated_dtw_config(), 0.45);
  const ScanIndex& index = detector.scan_index();
  for (const CstBbs& t : *targets_) {
    const SequenceFeatures tf =
        compute_sequence_features(t, detector.dtw_config().distance);
    const std::vector<std::uint32_t> order = index.scan_order(tf, t.size());
    CascadeStats stats;
    const std::vector<CascadeScore> cascade = cascade_scan(
        t, detector.repository(), order, tf, detector.dtw_config(), &stats);
    ASSERT_EQ(cascade.size(), detector.repository_size());
    EXPECT_EQ(stats.pairs, detector.repository_size());
    EXPECT_EQ(stats.exact + stats.kim_pruned + stats.envelope_pruned +
                  stats.early_abandoned,
              stats.pairs);
    EXPECT_GE(stats.exact, 1u);  // the first visit is never pruned
    EXPECT_EQ(cascade[order.front()].stage, CascadeStage::kExact);
  }
}

TEST_F(ScanIndexSuite, CascadeRejectsMalformedOrder) {
  Detector detector = make_detector(calibrated_dtw_config(), 0.45);
  const CstBbs& target = detector.repository().front().sequence;
  const SequenceFeatures tf = compute_sequence_features(
      target, detector.dtw_config().distance);
  const std::vector<std::uint32_t> short_order = {0, 1};
  EXPECT_THROW(cascade_scan(target, detector.repository(), short_order, tf,
                            detector.dtw_config()),
               std::invalid_argument);
}

/// Any permutation — not just the triage order — yields the equivalent
/// Detection; only the prune counts may differ. This is the "triage only
/// reorders work" half of the contract.
TEST_F(ScanIndexSuite, AnyVisitOrderYieldsEquivalentDetection) {
  Detector detector = make_detector(calibrated_dtw_config(), 0.45);
  const std::vector<AttackModel>& repo = detector.repository();
  std::vector<std::uint32_t> reversed(repo.size());
  for (std::uint32_t j = 0; j < reversed.size(); ++j)
    reversed[j] = static_cast<std::uint32_t>(reversed.size()) - 1 - j;
  for (const CstBbs& t : *targets_) {
    const Detection oracle = testutil::exhaustive_oracle(detector, t);
    const SequenceFeatures tf =
        compute_sequence_features(t, detector.dtw_config().distance);
    const std::vector<CascadeScore> cascade =
        cascade_scan(t, repo, reversed, tf, detector.dtw_config());
    std::vector<ModelScore> scores;
    for (std::size_t j = 0; j < repo.size(); ++j) {
      ModelScore s;
      s.model_name = repo[j].name;
      s.family = repo[j].family;
      s.score = cascade[j].score;
      s.pruned = cascade[j].stage != CascadeStage::kExact;
      scores.push_back(std::move(s));
    }
    testutil::expect_detection_equivalent(
        oracle, Detector::finalize(std::move(scores), detector.threshold()),
        "reversed-order");
  }
}

/// BatchStats bookkeeping: an indexed batch accounts every pair to
/// exactly one cascade stage.
TEST_F(ScanIndexSuite, BatchStatsAccountEveryPair) {
  Detector detector = make_detector(calibrated_dtw_config(), 0.45);
  BatchConfig config;
  config.threads = 2;
  config.index = true;
  const BatchDetector batch(detector, config);
  batch.reset_stats();
  (void)batch.scan_all(*targets_);
  const BatchStats stats = batch.stats();
  EXPECT_EQ(stats.pairs,
            targets_->size() * detector.repository_size());
  EXPECT_EQ(stats.exact + stats.kim_skipped + stats.lb_skipped +
                stats.early_abandoned,
            stats.pairs);
  EXPECT_GE(stats.exact, targets_->size());  // >= one exact visit per target
}

}  // namespace
}  // namespace scag::core
