// Tests for the SCAGuard core: per-BB aggregation, attack-relevant BB
// identification, Algorithm 1 (including the paper's Fig. 3 example), CST
// measurement, the distance functions, DTW, and the detector.
#include <gtest/gtest.h>

#include "core/attack_graph.h"
#include "core/bb_profile.h"
#include "core/cst.h"
#include "core/detector.h"
#include "core/distance.h"
#include "core/dtw.h"
#include "core/relevant.h"
#include "isa/normalize.h"
#include "cpu/interpreter.h"
#include "isa/assembler.h"

namespace scag::core {
namespace {

using cfg::BlockId;
using isa::assemble;

// ---- bb_profile -----------------------------------------------------------------

TEST(BbProfile, AggregatesHpcLinesAndTimestamps) {
  const isa::Program p = assemble(R"(
      mov rcx, 4
      loop:
      mov rax, [0x10000]
      clflush [0x10040]
      mov [0x10080], rax
      dec rcx
      jne loop
      hlt
  )");
  cpu::Interpreter interp;
  const auto run = interp.run(p);
  const cfg::Cfg cfg = cfg::Cfg::build(p);
  const auto stats = aggregate_by_block(cfg, run.profile);
  ASSERT_EQ(stats.size(), cfg.num_blocks());

  const BlockId loop = cfg.block_at_address(p.label("loop"));
  ASSERT_NE(loop, cfg::kNoBlock);
  EXPECT_TRUE(stats[loop].executed());
  EXPECT_GT(stats[loop].hpc_value, 0u);
  EXPECT_EQ(stats[loop].lines.size(), 3u);
  EXPECT_TRUE(stats[loop].lines.count(0x10000));
  EXPECT_TRUE(stats[loop].lines.count(0x10040));
  EXPECT_TRUE(stats[loop].lines.count(0x10080));

  // Access records carry the operation kind.
  bool saw_load = false, saw_flush = false, saw_store = false;
  for (const AccessRecord& rec : stats[loop].accesses) {
    saw_load |= rec.op == CacheOp::kLoad && rec.line_addr == 0x10000;
    saw_flush |= rec.op == CacheOp::kFlush && rec.line_addr == 0x10040;
    saw_store |= rec.op == CacheOp::kStore && rec.line_addr == 0x10080;
  }
  EXPECT_TRUE(saw_load);
  EXPECT_TRUE(saw_flush);
  EXPECT_TRUE(saw_store);
}

TEST(BbProfile, MismatchedProfileRejected) {
  const isa::Program p = assemble("nop\nhlt\n");
  const cfg::Cfg cfg = cfg::Cfg::build(p);
  trace::ExecutionProfile bogus;
  bogus.resize(99);
  EXPECT_THROW(aggregate_by_block(cfg, bogus), std::invalid_argument);
}

// ---- Relevant-BB identification ----------------------------------------------------

TEST(Relevant, StepOneRequiresExecutionAndHpc) {
  std::vector<BbStats> stats(3);
  stats[0].first_cycle = 1;
  stats[0].hpc_value = 5;  // executed, events
  stats[1].first_cycle = 0;
  stats[1].hpc_value = 5;  // never executed
  stats[2].first_cycle = 2;
  stats[2].hpc_value = 0;  // executed, no events
  const auto r = identify_relevant_blocks(stats);
  EXPECT_EQ(r.potential, (std::vector<BlockId>{0}));
}

TEST(Relevant, StepTwoKeepsOverlappingSets) {
  // Blocks 0 and 1 share a cache set; block 2 touches a private set.
  RelevantConfig config;
  config.set_mapping = {16, 4, 64};
  std::vector<BbStats> stats(3);
  for (auto& s : stats) {
    s.first_cycle = 1;
    s.hpc_value = 1;
  }
  stats[0].lines = {0x0000};          // set 0
  stats[1].lines = {0x0400, 0x0040};  // set 0 (alias) + set 1
  stats[2].lines = {0x0080};          // set 2, alone
  const auto r = identify_relevant_blocks(stats, config);
  EXPECT_EQ(r.relevant, (std::vector<BlockId>{0, 1}));
  EXPECT_EQ(r.shared_sets, (std::set<std::uint32_t>{0}));
}

TEST(Relevant, NoSharingMeansNothingRelevant) {
  RelevantConfig config;
  config.set_mapping = {16, 4, 64};
  std::vector<BbStats> stats(2);
  for (auto& s : stats) {
    s.first_cycle = 1;
    s.hpc_value = 1;
  }
  stats[0].lines = {0x0000};
  stats[1].lines = {0x0040};
  const auto r = identify_relevant_blocks(stats, config);
  EXPECT_TRUE(r.relevant.empty());
  EXPECT_EQ(r.potential.size(), 2u);
}

// ---- Algorithm 1 on the paper's Fig. 3 example --------------------------------------

// Fig. 3 (a): nodes a,b,c,d,e,f,g with the cycle a->b->c->d->a, where
// a, c, e are attack-relevant and HPC values are b=3, d=1, f=2, g=0
// (values chosen to match the (c) sub-figure's spirit: the a->b->e path
// has the highest average HPC).
struct Fig3 {
  cfg::Cfg cfg;  // unused: we drive build_attack_graph's pieces directly
};

TEST(AttackGraph, PaperFig3Shape) {
  // Build the CFG as a real program so the whole pipeline is exercised:
  //   a: -> b or c ; b: -> c or e ; c: -> d ; d: -> a (back edge) or f;
  //   f: -> e; e: end
  const isa::Program p = assemble(R"(
      .entry a
      a:
        mov rax, [0x20000]
        cmp rax, 1
        je c
      b:
        mov rbx, [0x30000]
        cmp rbx, 2
        je e
      c:
        mov rcx, [0x20040]
        cmp rcx, 3
        jne d
      d:
        nop
        cmp rax, 4
        je a
      f:
        nop
        jmp e
      e:
        mov rdx, [0x20000]
        hlt
  )");
  cpu::Interpreter interp;
  const auto run = interp.run(p);
  const cfg::Cfg cfg = cfg::Cfg::build(p);
  auto stats = aggregate_by_block(cfg, run.profile);

  const BlockId a = cfg.block_at_address(p.label("a"));
  const BlockId b = cfg.block_at_address(p.label("b"));
  const BlockId c = cfg.block_at_address(p.label("c"));
  const BlockId e = cfg.block_at_address(p.label("e"));

  // Mark a, c, e relevant (as in the figure) and give b a high HPC value.
  std::vector<BlockId> relevant = {a, c, e};
  stats[b].hpc_value = 30;

  const AttackGraph g = build_attack_graph(cfg, stats, relevant);
  // All relevant nodes are in the graph.
  EXPECT_TRUE(g.in_graph[a]);
  EXPECT_TRUE(g.in_graph[c]);
  EXPECT_TRUE(g.in_graph[e]);
  // The direct edge a->c (weight MAX) must be kept.
  EXPECT_TRUE(g.graph.has_edge(a, c));
  // The high-HPC interior node b is restored on the path to e.
  EXPECT_TRUE(g.in_graph[b]);
  EXPECT_TRUE(g.graph.has_edge(a, b));
  EXPECT_TRUE(g.graph.has_edge(b, e));
}

TEST(AttackGraph, FewerThanTwoRelevantNodesMakesEmptyGraph) {
  const isa::Program p = assemble("mov rax, [0x1000]\nhlt\n");
  cpu::Interpreter interp;
  const auto run = interp.run(p);
  const cfg::Cfg cfg = cfg::Cfg::build(p);
  const auto stats = aggregate_by_block(cfg, run.profile);
  const AttackGraph g = build_attack_graph(cfg, stats, {0});
  EXPECT_EQ(g.node_count(), 1u);  // just the single relevant node
  for (const auto& adj : g.graph.adj) EXPECT_TRUE(adj.empty());
}

// ---- CST measurement -----------------------------------------------------------------

TEST(Cst, ScenarioStartsFullOfOtherData) {
  const Cst cst = measure_cst({});
  EXPECT_DOUBLE_EQ(cst.before.ao, 0.0);
  EXPECT_DOUBLE_EQ(cst.before.io, 1.0);
  EXPECT_EQ(cst.before, cst.after);  // no accesses, no change
  EXPECT_DOUBLE_EQ(cst.change(), 0.0);
}

TEST(Cst, LoadsRaiseAoAndLowerIo) {
  CstConfig config;  // 64 sets x 8 ways = 512 lines
  std::vector<AccessRecord> accesses;
  for (int i = 0; i < 64; ++i)
    accesses.push_back({CacheOp::kLoad, static_cast<std::uint64_t>(i) * 64});
  const Cst cst = measure_cst(accesses, config);
  EXPECT_DOUBLE_EQ(cst.after.ao, 64.0 / 512.0);
  EXPECT_DOUBLE_EQ(cst.after.io, 1.0 - 64.0 / 512.0);
  EXPECT_NEAR(cst.change(), 64.0 / 512.0, 1e-12);
}

TEST(Cst, FlushOfAbsentLinesChangesNothing) {
  std::vector<AccessRecord> accesses = {{CacheOp::kFlush, 0x1000},
                                        {CacheOp::kFlush, 0x2000}};
  const Cst cst = measure_cst(accesses);
  EXPECT_DOUBLE_EQ(cst.change(), 0.0);
}

TEST(Cst, FlushAfterLoadRemovesOwnLine) {
  std::vector<AccessRecord> accesses = {{CacheOp::kLoad, 0x1000},
                                        {CacheOp::kFlush, 0x1000}};
  const Cst cst = measure_cst(accesses);
  EXPECT_DOUBLE_EQ(cst.after.ao, 0.0);
  // One "other" line was evicted by the load and never comes back.
  EXPECT_LT(cst.after.io, 1.0);
}

TEST(Cst, AoPlusIoNeverExceedsOne) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<AccessRecord> accesses;
    for (int i = 0; i < 200; ++i) {
      const auto op = static_cast<CacheOp>(rng.below(3));
      accesses.push_back({op, rng.below(1 << 20) * 64});
    }
    const Cst cst = measure_cst(accesses);
    EXPECT_LE(cst.after.ao + cst.after.io, 1.0 + 1e-12);
    EXPECT_GE(cst.after.ao, 0.0);
    EXPECT_GE(cst.after.io, 0.0);
  }
}

// ---- Distances ------------------------------------------------------------------------

TEST(Levenshtein, KnownValues) {
  using V = std::vector<std::string>;
  EXPECT_EQ(levenshtein(V{}, V{}), 0u);
  EXPECT_EQ(levenshtein(V{"a"}, V{}), 1u);
  EXPECT_EQ(levenshtein(V{"a", "b", "c"}, V{"a", "x", "c"}), 1u);
  EXPECT_EQ(levenshtein(V{"a", "b"}, V{"b", "a"}), 2u);
  EXPECT_EQ(levenshtein(V{"k", "i", "t", "t", "e", "n"},
                        V{"s", "i", "t", "t", "i", "n", "g"}),
            3u);
}

TEST(Levenshtein, SymmetricProperty) {
  Rng rng(7);
  const std::vector<std::string> alphabet = {"mov", "add", "cmp", "jl"};
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::string> a, b;
    for (std::uint64_t i = 0; i < rng.below(10); ++i)
      a.push_back(rng.pick(alphabet));
    for (std::uint64_t i = 0; i < rng.below(10); ++i)
      b.push_back(rng.pick(alphabet));
    EXPECT_EQ(levenshtein(a, b), levenshtein(b, a));
  }
}

TEST(WeightedLevenshtein, ZeroForIdentical) {
  const std::vector<std::string> seq = {"flush", "load", "br"};
  EXPECT_DOUBLE_EQ(weighted_levenshtein(seq, seq), 0.0);
}

TEST(WeightedLevenshtein, InsertionCostsTokenWeight) {
  const std::vector<std::string> a = {"load"};
  const std::vector<std::string> b = {"load", "time"};
  EXPECT_DOUBLE_EQ(weighted_levenshtein(a, b),
                   isa::semantic_token_weight("time"));
}

TEST(CstDistance, BoundsAndIdentity) {
  CstBbsElement x;
  x.norm_instrs = {"mov reg, mem", "add reg, imm"};
  x.sem_tokens = {"load"};
  x.cst.before = {0.0, 1.0};
  x.cst.after = {0.1, 0.9};
  EXPECT_DOUBLE_EQ(cst_distance(x, x), 0.0);

  CstBbsElement y;
  y.norm_instrs = {"clflush mem"};
  y.sem_tokens = {"flush"};
  y.cst.before = {0.0, 1.0};
  y.cst.after = {0.5, 0.5};
  const double d = cst_distance(x, y);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
  EXPECT_DOUBLE_EQ(d, cst_distance(y, x));
}

TEST(CstDistance, CspComponentMatchesPaperFormula) {
  CstBbsElement a, b;
  a.cst.before = {0.0, 1.0};
  a.cst.after = {0.2, 0.8};  // P1 = (0.2 + 0.2) / 2 = 0.2
  b.cst.before = {0.0, 1.0};
  b.cst.after = {0.5, 0.5};  // P2 = 0.5
  EXPECT_NEAR(csp_distance(a.cst, b.cst), 0.3, 1e-12);
}

// ---- DTW -------------------------------------------------------------------------------

TEST(Dtw, IdenticalSequencesHaveZeroDistance) {
  const auto cost = [](std::size_t i, std::size_t j) {
    return i == j ? 0.0 : 1.0;
  };
  const DtwResult r = dtw(5, 5, cost);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(r.path_length, 5u);
}

TEST(Dtw, WarpsRepeatedElements) {
  // a = [0 1 2], b = [0 1 1 1 2]: perfect alignment despite stretching.
  const std::vector<int> a = {0, 1, 2}, b = {0, 1, 1, 1, 2};
  const DtwResult r = dtw(a.size(), b.size(), [&](std::size_t i, std::size_t j) {
    return a[i] == b[j] ? 0.0 : 1.0;
  });
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST(Dtw, EmptySequenceConvention) {
  const auto cost = [](std::size_t, std::size_t) { return 0.0; };
  EXPECT_DOUBLE_EQ(dtw(0, 0, cost).distance, 0.0);
  EXPECT_DOUBLE_EQ(dtw(0, 4, cost).distance, 4.0);
  EXPECT_DOUBLE_EQ(dtw(3, 0, cost).distance, 3.0);
}

TEST(Dtw, WindowNeverBeatsUnconstrained) {
  Rng rng(13);
  std::vector<double> a, b;
  for (int i = 0; i < 12; ++i) a.push_back(rng.uniform01());
  for (int i = 0; i < 9; ++i) b.push_back(rng.uniform01());
  const auto cost = [&](std::size_t i, std::size_t j) {
    return std::abs(a[i] - b[j]);
  };
  DtwConfig unconstrained;
  DtwConfig banded;
  banded.window = 2;
  EXPECT_LE(dtw(a.size(), b.size(), cost, unconstrained).distance,
            dtw(a.size(), b.size(), cost, banded).distance + 1e-12);
}

TEST(Similarity, ScoreInUnitIntervalAndMonotone) {
  CstBbsElement near_a, near_b, far;
  near_a.sem_tokens = {"flush", "br"};
  near_a.norm_instrs = {"clflush mem", "jl mem"};
  near_b = near_a;
  far.sem_tokens = {"store", "store", "store"};
  far.norm_instrs = {"mov mem, reg", "mov mem, reg", "mov mem, reg"};
  far.cst.after = {0.9, 0.1};
  far.cst.before = {0.0, 1.0};

  const CstBbs seq_a = {near_a, near_a};
  const CstBbs seq_b = {near_b, near_b};
  const CstBbs seq_far = {far, far, far, far};
  const DtwConfig cal = calibrated_dtw_config();
  const double same = similarity(seq_a, seq_b, cal);
  const double diff = similarity(seq_a, seq_far, cal);
  EXPECT_DOUBLE_EQ(same, 1.0);
  EXPECT_GT(same, diff);
  EXPECT_GT(diff, 0.0);
  EXPECT_LE(diff, 1.0);
}

TEST(Similarity, PaperFormulaWhenGammaIsOne) {
  CstBbsElement x;
  x.sem_tokens = {"load"};
  x.norm_instrs = {"mov reg, mem"};
  CstBbs a = {x}, empty;
  DtwConfig plain;  // gamma = 1, cost_scale = 1, accumulated
  // D = 1 (one unmatched element) -> similarity = 1/(1+1).
  EXPECT_DOUBLE_EQ(similarity(a, empty, plain), 0.5);
}

// ---- Detector ---------------------------------------------------------------------------

TEST(Detector, EnrollRejectsBenign) {
  Detector d;
  const isa::Program p = assemble("nop\nhlt\n");
  EXPECT_THROW(d.enroll(p, Family::kBenign), std::invalid_argument);
}

TEST(Detector, EmptyRepositoryScansBenign) {
  Detector d;
  const Detection det = d.scan(assemble("mov rax, [0x1000]\nhlt\n"));
  EXPECT_FALSE(det.is_attack());
  EXPECT_EQ(det.verdict, Family::kBenign);
  EXPECT_TRUE(det.scores.empty());
}

TEST(Detector, SelfScanIsPerfectMatch) {
  AttackModel m;
  m.name = "synthetic";
  m.family = Family::kFlushReload;
  CstBbsElement e;
  e.sem_tokens = {"flush", "br"};
  e.norm_instrs = {"clflush mem", "jl mem"};
  m.sequence = {e, e, e};

  Detector d(ModelConfig{}, calibrated_dtw_config(), 0.45);
  d.enroll(m);
  const Detection det = d.scan(m.sequence);
  EXPECT_TRUE(det.is_attack());
  EXPECT_EQ(det.verdict, Family::kFlushReload);
  EXPECT_DOUBLE_EQ(det.best_score, 1.0);
}

TEST(Detector, ThresholdGatesVerdict) {
  AttackModel m;
  m.family = Family::kPrimeProbe;
  CstBbsElement e;
  e.sem_tokens = {"load", "br"};
  m.sequence = {e, e};

  CstBbs target;  // empty: similarity will be tiny but nonzero
  Detector strict(ModelConfig{}, calibrated_dtw_config(), 0.45);
  strict.enroll(m);
  EXPECT_FALSE(strict.scan(target).is_attack());

  Detector lax(ModelConfig{}, calibrated_dtw_config(), 0.0);
  lax.enroll(m);
  EXPECT_TRUE(lax.scan(target).is_attack());
}

TEST(Detector, ScoresSortedDescending) {
  Detector d(ModelConfig{}, calibrated_dtw_config(), 0.45);
  CstBbsElement flushy, loady;
  flushy.sem_tokens = {"flush", "time"};
  loady.sem_tokens = {"load", "br"};
  AttackModel m1{"fr", Family::kFlushReload, {flushy, flushy}};
  AttackModel m2{"pp", Family::kPrimeProbe, {loady, loady}};
  d.enroll(m1);
  d.enroll(m2);
  const Detection det = d.scan(CstBbs{flushy, flushy});
  ASSERT_EQ(det.scores.size(), 2u);
  EXPECT_GE(det.scores[0].score, det.scores[1].score);
  EXPECT_EQ(det.scores[0].model_name, "fr");
}

}  // namespace
}  // namespace scag::core
