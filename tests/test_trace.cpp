// Tests for the trace layer: HPC counter arithmetic and profile helpers.
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "trace/hpc.h"
#include "trace/profile.h"

namespace scag::trace {
namespace {

TEST(HpcCounters, BumpAndTotal) {
  HpcCounters c;
  EXPECT_EQ(c.total(), 0u);
  c.bump(HpcEvent::kL1dLoadMiss);
  c.bump(HpcEvent::kCacheMiss, 3);
  EXPECT_EQ(c[HpcEvent::kL1dLoadMiss], 1u);
  EXPECT_EQ(c[HpcEvent::kCacheMiss], 3u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(HpcCounters, AddAssignAccumulates) {
  HpcCounters a, b;
  a.bump(HpcEvent::kLlcLoadHit, 2);
  b.bump(HpcEvent::kLlcLoadHit, 5);
  b.bump(HpcEvent::kBranchMiss, 1);
  a += b;
  EXPECT_EQ(a[HpcEvent::kLlcLoadHit], 7u);
  EXPECT_EQ(a[HpcEvent::kBranchMiss], 1u);
}

TEST(HpcCounters, DeltaFromSaturates) {
  HpcCounters now, earlier;
  now.bump(HpcEvent::kL1dLoadHit, 10);
  earlier.bump(HpcEvent::kL1dLoadHit, 4);
  earlier.bump(HpcEvent::kBranchMiss, 2);  // never happens in practice
  const HpcCounters d = now.delta_from(earlier);
  EXPECT_EQ(d[HpcEvent::kL1dLoadHit], 6u);
  EXPECT_EQ(d[HpcEvent::kBranchMiss], 0u);  // clamped, not underflowed
}

TEST(HpcCounters, EqualityIsElementwise) {
  HpcCounters a, b;
  EXPECT_EQ(a, b);
  a.bump(HpcEvent::kL1iLoadMiss);
  EXPECT_NE(a, b);
}

TEST(HpcEvents, AllElevenHaveDistinctNames) {
  std::set<std::string_view> names;
  for (std::size_t e = 0; e < kNumHpcEvents; ++e)
    names.insert(hpc_event_name(static_cast<HpcEvent>(e)));
  EXPECT_EQ(names.size(), kNumHpcEvents);
  EXPECT_EQ(kNumHpcEvents, 11u);  // Table I: 11 countable events
}

TEST(Profile, ResizeInitializesAllVectors) {
  ExecutionProfile p;
  p.resize(5);
  EXPECT_EQ(p.per_instr.size(), 5u);
  EXPECT_EQ(p.first_cycle.size(), 5u);
  EXPECT_EQ(p.line_addrs.size(), 5u);
  EXPECT_EQ(p.transient_line_addrs.size(), 5u);
  EXPECT_FALSE(p.executed(0));
  EXPECT_EQ(p.hpc_value(0), 0u);
}

TEST(Profile, HpcValueSumsElevenEvents) {
  ExecutionProfile p;
  p.resize(1);
  p.per_instr[0].bump(HpcEvent::kL1dLoadMiss, 2);
  p.per_instr[0].bump(HpcEvent::kBranchMiss, 3);
  EXPECT_EQ(p.hpc_value(0), 5u);
}

TEST(Profile, ExitReasonNames) {
  EXPECT_EQ(exit_reason_name(ExitReason::kHalted), "halted");
  EXPECT_EQ(exit_reason_name(ExitReason::kInstrLimit), "instruction-limit");
  EXPECT_EQ(exit_reason_name(ExitReason::kBadInstruction), "bad-instruction");
}

}  // namespace
}  // namespace scag::trace
