// Tests for the scan explainability layer (core/explain.h).
//
// The load-bearing claim is BIT-EXACTNESS: dtw_align replicates the scan
// kernel's dynamic program cell for cell, so the reconstructed warping
// path's forward-accumulated pair costs EXPECT_EQ the kernel's
// DtwResult::distance (no tolerance), the per-model distance/score equal
// cst_bbs_distance/similarity, and a ScanReport's verdict/scores equal
// the Detection of the same scan — compiled fast path included. On top of
// that: path validity (a monotone warping path from (0,0) to (n-1,m-1)),
// the D_IS/D_CSP decomposition identity, the empty-sequence gap
// convention, pruning attribution agreeing with bounded_similarity's
// actual decisions, and JSON/table rendering (balanced, hostile names
// escaped).
#include <gtest/gtest.h>

#include "seed_util.h"

#include <cmath>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/batch_detector.h"
#include "core/distance.h"
#include "core/explain.h"
#include "isa/random_program.h"
#include "support/rng.h"

namespace scag::core {
namespace {

/// The configuration axes bit-exactness must hold on: both alphabets
/// (paper-literal default and the calibrated reduced-token config), plus
/// band, normalization, and length-penalty variations — mirrors
/// test_dtw_properties.cpp so the two suites cover the same space.
std::vector<DtwConfig> property_configs() {
  std::vector<DtwConfig> configs;
  configs.push_back(DtwConfig{});           // paper-literal
  configs.push_back(calibrated_dtw_config());

  DtwConfig banded = calibrated_dtw_config();
  banded.window = 2;
  configs.push_back(banded);

  DtwConfig accumulated;
  accumulated.window = 3;
  accumulated.length_penalty = 0.5;
  configs.push_back(accumulated);

  DtwConfig averaged;
  averaged.normalization = DtwNormalization::kPathAveraged;
  averaged.cost_scale = 2.0;
  configs.push_back(averaged);
  return configs;
}

/// Structural JSON validator: quotes respected, braces/brackets balanced,
/// no raw control characters. Mirrors tests/test_metrics.cpp.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
    if (in_string) {
      if (c == '\\') ++i;  // skip escaped char
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

class ExplainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::vector<CstBbs>();
    const ModelBuilder builder;

    const attacks::PocConfig poc;
    corpus_->push_back(builder.build(attacks::fr_iaik(poc)).sequence);
    corpus_->push_back(builder.build(attacks::pp_iaik(poc)).sequence);
    corpus_->push_back(builder.build(attacks::spectre_fr_ideal(poc)).sequence);
    Rng benign_rng(99);
    corpus_->push_back(
        builder.build(benign::aes_ttables(benign_rng)).sequence);

    // Randomized programs (often short or empty sequences); seed
    // overridable for replay (docs/testing-guide.md).
    corpus_seed_ = testutil::test_seed(4321);
    Rng rng(corpus_seed_);
    for (int k = 0; k < 5; ++k) {
      Rng gen = rng.split();
      isa::RandomProgramOptions options;
      options.statements = 15 + 7 * k;
      corpus_->push_back(
          builder.build(isa::random_program(gen, options)).sequence);
    }
    corpus_->push_back(CstBbs{});  // explicit empty sequence
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  /// The canonical 4-family detector the report-level tests scan against.
  static Detector make_detector(const DtwConfig& config) {
    Detector detector(ModelConfig{}, config, 0.45);
    for (const char* name :
         {"FR-IAIK", "PP-IAIK", "Spectre-FR-Ideal", "Spectre-PP-Trippel"}) {
      const attacks::PocSpec& spec = attacks::poc_by_name(name);
      detector.enroll(spec.build(attacks::PocConfig{}), spec.family);
    }
    return detector;
  }

  static std::vector<CstBbs>* corpus_;
  static std::uint64_t corpus_seed_;
  ::testing::ScopedTrace seed_trace_{__FILE__, __LINE__,
                                     testutil::seed_note(corpus_seed_)};
};

std::vector<CstBbs>* ExplainTest::corpus_ = nullptr;
std::uint64_t ExplainTest::corpus_seed_ = 0;

// The acceptance criterion of the layer: summing the reconstructed path's
// pair costs in forward order reproduces the scan kernel's accumulated
// DTW distance bit-exactly (EXPECT_EQ on doubles, no tolerance), on every
// config (both alphabets) and every corpus pair. Path length matches too.
TEST_F(ExplainTest, PathCostsSumToKernelDistanceBitExactly) {
  for (const DtwConfig& config : property_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        const CstBbs& a = (*corpus_)[i];
        const CstBbs& b = (*corpus_)[j];
        const DtwAlignment align = dtw_align(a, b, config);
        const DtwResult kernel = dtw(
            a.size(), b.size(),
            [&](std::size_t x, std::size_t y) {
              return cst_distance(a[x], b[y], config.distance);
            },
            config);
        EXPECT_EQ(align.result.distance, kernel.distance)
            << "pair " << i << "," << j;
        EXPECT_EQ(align.result.path_length, kernel.path_length)
            << "pair " << i << "," << j;
        EXPECT_FALSE(align.result.abandoned);

        double acc = 0.0;
        for (const AlignedPair& p : align.path) acc += p.cost;
        EXPECT_EQ(acc, kernel.distance) << "pair " << i << "," << j;
        EXPECT_EQ(align.path.size(), kernel.path_length)
            << "pair " << i << "," << j;
      }
    }
  }
}

// The path must be a valid warping path: starts at (0,0), ends at
// (n-1,m-1), every step advances the target index, the model index, or
// both, by exactly one; and each pair's cost decomposes into the weighted
// D_IS/D_CSP combination bit-exactly.
TEST_F(ExplainTest, PathIsMonotoneAndDecompositionIsExact) {
  for (const DtwConfig& config : property_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        const CstBbs& a = (*corpus_)[i];
        const CstBbs& b = (*corpus_)[j];
        if (a.empty() || b.empty()) continue;  // gap convention tested below
        const DtwAlignment align = dtw_align(a, b, config);
        ASSERT_FALSE(align.path.empty());
        EXPECT_EQ(align.path.front().target_index, 0u);
        EXPECT_EQ(align.path.front().model_index, 0u);
        EXPECT_EQ(align.path.back().target_index, a.size() - 1);
        EXPECT_EQ(align.path.back().model_index, b.size() - 1);
        for (std::size_t k = 0; k < align.path.size(); ++k) {
          const AlignedPair& p = align.path[k];
          ASSERT_FALSE(p.is_gap());
          EXPECT_EQ(p.target_block, a[p.target_index].block);
          EXPECT_EQ(p.model_block, b[p.model_index].block);
          EXPECT_EQ(p.cost,
                    config.distance.is_weight * p.is_distance +
                        (1.0 - config.distance.is_weight) * p.csp_distance);
          EXPECT_EQ(p.is_distance,
                    instruction_distance(a[p.target_index], b[p.model_index],
                                         config.distance));
          EXPECT_EQ(p.csp_distance, csp_distance(a[p.target_index].cst,
                                                 b[p.model_index].cst));
          if (k == 0) continue;
          const AlignedPair& q = align.path[k - 1];
          const std::size_t dt = p.target_index - q.target_index;
          const std::size_t dm = p.model_index - q.model_index;
          EXPECT_TRUE((dt == 0 || dt == 1) && (dm == 0 || dm == 1) &&
                      dt + dm >= 1)
              << "step " << k << " moved (" << dt << "," << dm << ")";
        }
      }
    }
  }
}

// Empty sequences follow the kernel's convention: every element of the
// non-empty side becomes a gap pair at cost 1, and the sum is n+m.
TEST_F(ExplainTest, EmptySequencesAlignAsGapPairs) {
  const DtwConfig config = calibrated_dtw_config();
  for (const CstBbs& s : *corpus_) {
    const DtwAlignment align = dtw_align(s, CstBbs{}, config);
    EXPECT_EQ(align.result.distance, static_cast<double>(s.size()));
    EXPECT_EQ(align.path.size(), s.size());
    for (std::size_t k = 0; k < align.path.size(); ++k) {
      EXPECT_TRUE(align.path[k].is_gap());
      EXPECT_EQ(align.path[k].target_index, k);
      EXPECT_EQ(align.path[k].model_index, kGapIndex);
      EXPECT_EQ(align.path[k].cost, 1.0);
      EXPECT_EQ(align.path[k].is_distance, 0.0);
      EXPECT_EQ(align.path[k].csp_distance, 0.0);
    }
    const DtwAlignment flipped = dtw_align(CstBbs{}, s, config);
    EXPECT_EQ(flipped.result.distance, static_cast<double>(s.size()));
    for (const AlignedPair& p : flipped.path) {
      EXPECT_EQ(p.target_index, kGapIndex);
      EXPECT_TRUE(p.is_gap());
    }
  }
  const DtwAlignment both = dtw_align(CstBbs{}, CstBbs{}, config);
  EXPECT_EQ(both.result.distance, 0.0);
  EXPECT_TRUE(both.path.empty());
}

// explain_pair's distance and score must equal the sequence-level scan
// kernels bit-exactly — the whole point of the report is that its numbers
// ARE the scan's numbers.
TEST_F(ExplainTest, PairDistanceAndScoreEqualScanKernels) {
  AttackModel model;
  model.name = "probe";
  model.family = Family::kFlushReload;
  for (const DtwConfig& config : property_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        const CstBbs& target = (*corpus_)[i];
        model.sequence = (*corpus_)[j];
        const ModelExplanation e =
            explain_pair(target, model, config, /*cutoff_score=*/0.45);
        EXPECT_EQ(e.distance, cst_bbs_distance(target, model.sequence, config))
            << "pair " << i << "," << j;
        EXPECT_EQ(e.score, similarity(target, model.sequence, config))
            << "pair " << i << "," << j;
        EXPECT_EQ(e.target_length, target.size());
        EXPECT_EQ(e.model_length, model.sequence.size());
        EXPECT_EQ(e.path_length, e.path.size());
      }
    }
  }
}

// A ScanReport must agree with the Detection of the same scan — verdict,
// best_score, and every per-model score, in the same order, bit for bit —
// whether the scan ran through the compiled fast path (the default) or
// the string kernels.
TEST_F(ExplainTest, ReportMatchesDetectionBitExactly) {
  for (const DtwConfig& config :
       {DtwConfig{}, calibrated_dtw_config()}) {  // both alphabets
    Detector detector = make_detector(config);
    for (bool compiled : {true, false}) {
      detector.set_use_compiled(compiled);
      for (std::size_t i = 0; i < corpus_->size(); ++i) {
        SCOPED_TRACE("target " + std::to_string(i) +
                     (compiled ? " compiled" : " string"));
        const CstBbs& target = (*corpus_)[i];
        const Detection det = detector.scan(target);
        const ScanReport report =
            detector.explain(target, "t" + std::to_string(i), {});
        EXPECT_EQ(report.verdict, det.verdict);
        EXPECT_EQ(report.best_score, det.best_score);
        EXPECT_EQ(report.threshold, detector.threshold());
        ASSERT_EQ(report.models.size(), det.scores.size());
        for (std::size_t k = 0; k < det.scores.size(); ++k) {
          EXPECT_EQ(report.models[k].model_name, det.scores[k].model_name);
          EXPECT_EQ(report.models[k].family, det.scores[k].family);
          EXPECT_EQ(report.models[k].score, det.scores[k].score);
        }
      }
    }
  }
}

// The pruning attribution must agree with what bounded_similarity
// actually decides at the same cutoff: lb_prunes <=> PruneKind::kLowerBound,
// an early_abandon_row <=> PruneKind::kEarlyAbandon, neither <=> kNone.
TEST_F(ExplainTest, PruneAttributionMatchesBoundedSimilarity) {
  const double cutoffs[] = {0.2, 0.45, 0.75, 0.9};
  AttackModel model;
  model.name = "probe";
  for (const DtwConfig& config : property_configs()) {
    for (std::size_t i = 0; i < corpus_->size(); ++i) {
      for (std::size_t j = 0; j < corpus_->size(); ++j) {
        const CstBbs& target = (*corpus_)[i];
        model.sequence = (*corpus_)[j];
        for (double cutoff : cutoffs) {
          const ModelExplanation e =
              explain_pair(target, model, config, cutoff);
          const BoundedScore bs =
              bounded_similarity(target, model.sequence, cutoff, config);
          SCOPED_TRACE("pair " + std::to_string(i) + "," + std::to_string(j) +
                       " cutoff " + std::to_string(cutoff));
          EXPECT_EQ(e.prune.cutoff_score, cutoff);
          EXPECT_EQ(e.prune.lower_bound,
                    cst_bbs_distance_lower_bound(target, model.sequence,
                                                 config));
          EXPECT_EQ(e.prune.score_upper_bound,
                    similarity_upper_bound(target, model.sequence, config));
          switch (bs.pruned) {
            case PruneKind::kLowerBound:
              EXPECT_TRUE(e.prune.lb_prunes);
              break;
            case PruneKind::kEarlyAbandon:
              EXPECT_FALSE(e.prune.lb_prunes);
              EXPECT_GE(e.prune.early_abandon_row, 1);
              EXPECT_LE(e.prune.early_abandon_row,
                        static_cast<std::ptrdiff_t>(target.size()));
              break;
            case PruneKind::kNone:
              EXPECT_FALSE(e.prune.lb_prunes);
              EXPECT_EQ(e.prune.early_abandon_row, -1);
              break;
          }
        }
      }
    }
  }
}

// Rationale: top-k cheapest non-gap pairs of the best model, cost-sorted,
// shares derived from the accumulated cost.
TEST_F(ExplainTest, RationaleIsTopKCheapestPairs) {
  const Detector detector = make_detector(calibrated_dtw_config());
  ExplainConfig config;
  config.top_k = 4;
  const ScanReport report =
      detector.explain((*corpus_)[0], "fr-iaik-target", config);
  ASSERT_FALSE(report.models.empty());
  const ModelExplanation& best = report.models.front();
  std::size_t non_gap = 0;
  for (const AlignedPair& p : best.path) non_gap += !p.is_gap();
  ASSERT_EQ(report.rationale.size(), std::min<std::size_t>(4, non_gap));
  for (std::size_t i = 0; i < report.rationale.size(); ++i) {
    const RationaleEntry& r = report.rationale[i];
    EXPECT_EQ(r.model_name, best.model_name);
    EXPECT_FALSE(r.pair.is_gap());
    if (i > 0) {
      EXPECT_GE(r.pair.cost, report.rationale[i - 1].pair.cost);
    }
    EXPECT_EQ(r.share, best.accumulated_cost > 0.0
                           ? r.pair.cost / best.accumulated_cost
                           : 0.0);
  }
  // top_k = 0 disables the rationale without touching the evidence.
  ExplainConfig none;
  none.top_k = 0;
  EXPECT_TRUE(detector.explain((*corpus_)[0], "t", none).rationale.empty());
}

// JSON rendering: structurally valid, schema-tagged, and hostile target
// names are escaped, never spliced raw.
TEST_F(ExplainTest, JsonIsBalancedAndEscapesHostileNames) {
  const Detector detector = make_detector(calibrated_dtw_config());
  const std::string hostile = "evil\"name\\with\nnewline\x01" "end";
  const ScanReport report = detector.explain((*corpus_)[0], hostile, {});
  const std::string json = report.to_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"scag-scan-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\\\"name\\\\with\\nnewline\\u0001end"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single-line document

  // include_paths=false drops the per-pair arrays but stays valid.
  ExplainConfig no_paths;
  no_paths.include_paths = false;
  const std::string lean =
      detector.explain((*corpus_)[0], "t", no_paths).to_json();
  EXPECT_TRUE(json_balanced(lean));
  EXPECT_EQ(lean.find("\"path\":"), std::string::npos);
  EXPECT_LT(lean.size(), json.size());

  // Scores in the JSON are round-trippable %.17g plus hex-bits twins.
  EXPECT_NE(json.find("\"best_score_bits\":\"" +
                      ieee_hex_bits(report.best_score) + "\""),
            std::string::npos);
}

// Table rendering: human-readable, carries the verdict line and both
// tables; an empty repository degrades to a one-line note.
TEST_F(ExplainTest, TableRendersVerdictEvidenceAndRationale) {
  const Detector detector = make_detector(calibrated_dtw_config());
  const std::string table = detector.explain((*corpus_)[0], "target-x", {})
                                .to_table();
  EXPECT_NE(table.find("Scan explanation: target-x"), std::string::npos);
  EXPECT_NE(table.find("Model evidence"), std::string::npos);
  EXPECT_NE(table.find("Rationale"), std::string::npos);
  EXPECT_NE(table.find("D_IS"), std::string::npos);

  const Detector empty_repo(ModelConfig{}, calibrated_dtw_config(), 0.45);
  const ScanReport empty = empty_repo.explain((*corpus_)[0], "t", {});
  EXPECT_EQ(empty.verdict, Family::kBenign);
  EXPECT_NE(empty.to_table().find("empty repository"), std::string::npos);
  EXPECT_TRUE(json_balanced(empty.to_json()));
}

// BatchDetector::explain_all is the serial loop over Detector::explain
// with generated names — byte-identical reports.
TEST_F(ExplainTest, BatchExplainAllMatchesSerialExplain) {
  const Detector detector = make_detector(calibrated_dtw_config());
  const BatchDetector batch(detector);
  std::vector<CstBbs> targets((*corpus_).begin(), (*corpus_).begin() + 3);
  const std::vector<ScanReport> reports = batch.explain_all(targets, {});
  ASSERT_EQ(reports.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const ScanReport serial =
        detector.explain(targets[i], "target-" + std::to_string(i), {});
    EXPECT_EQ(reports[i].to_json(), serial.to_json()) << "target " << i;
  }
}

}  // namespace
}  // namespace scag::core
