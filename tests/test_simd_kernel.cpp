// Tri-kernel bit-equality suite for the wavefront SIMD DP kernel
// (core/dtw_wavefront.h + core/simd.h).
//
// Three kernels can score a pair: the string scalar kernel (the oracle),
// the compiled scalar kernel, and the wavefront SIMD kernel (reachable
// from both the string and compiled cost functors via DtwConfig::kernel).
// The contract is bit-identity — same distance bits, same path length
// (tie-breaks included), same abandon decisions — which this suite checks
// with EXPECT_EQ on IEEE-754 bit patterns, never tolerances, focusing on
// the paths the bugfixes in this change touched:
//
//   - degenerate shapes: empty vs empty, empty vs nonempty, 1-element
//     sequences, and windows narrower than |n - m| (both kernels must
//     widen identically);
//   - the bounded-DP cutoff translation (detail::accumulated_cutoff),
//     whose n+m-1 factor used to wrap to SIZE_MAX on two empty sequences;
//   - early abandon: same abandon row, same returned bound, under both
//     kernels, across cutoffs that never/sometimes/always fire;
//   - counter accounting: dtw.dp_cells is identical between kernels on
//     full runs, and is flushed even when ScanTimeoutError unwinds the DP
//     (the RAII CellCountFlusher fix).
//
// The end-to-end sweep (whole-repository scans on both alphabets at
// 1/2/8 threads) lives in tests/test_scan_index.cpp via the shared
// differential harness; random-matrix coverage lives in
// tests/test_fuzz.cpp (FuzzSimd). Run with SCAG_SIMD=0 to exercise the
// dispatch escape hatch (scripts/check.sh does both).
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "attacks/registry.h"
#include "benign/registry.h"
#include "core/compiled.h"
#include "core/dtw.h"
#include "core/dtw_internal.h"
#include "core/dtw_wavefront.h"
#include "core/model.h"
#include "core/simd.h"
#include "differential_scan.h"
#include "support/metrics.h"

namespace scag::core {
namespace {

using testutil::score_bits;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The DTW configuration axes every property suite in this repo sweeps:
/// paper-literal, calibrated, banded, and length-penalized variants.
std::vector<DtwConfig> config_axes() {
  std::vector<DtwConfig> configs;
  configs.push_back(DtwConfig{});  // paper-literal full tokens
  configs.push_back(calibrated_dtw_config());
  DtwConfig banded = calibrated_dtw_config();
  banded.window = 2;
  configs.push_back(banded);
  DtwConfig narrow;  // window far narrower than most |n - m| gaps
  narrow.window = 1;
  narrow.normalization = DtwNormalization::kPathAveraged;
  configs.push_back(narrow);
  DtwConfig penalized = calibrated_dtw_config();
  penalized.length_penalty = 0.25;
  configs.push_back(penalized);
  return configs;
}

/// Deterministic synthetic cost functor (no modeling pipeline involved).
double synth_cost(std::size_t i, std::size_t j) {
  return static_cast<double>((i * 31 + j * 17 + (i ^ j)) % 11) / 11.0;
}

void expect_results_equal(const DtwResult& scalar, const DtwResult& wave,
                          const std::string& what) {
  EXPECT_EQ(score_bits(scalar.distance), score_bits(wave.distance))
      << what << ": distance " << scalar.distance << " vs " << wave.distance;
  EXPECT_EQ(scalar.path_length, wave.path_length) << what;
  EXPECT_EQ(scalar.abandoned, wave.abandoned) << what;
}

// ---------------------------------------------------------------------------
// Degenerate shapes, directly at the DP level.

TEST(SimdKernel, DegenerateShapesMatchScalarBitExactly) {
  const std::size_t shapes[][2] = {{0, 0}, {0, 1}, {1, 0},  {0, 7},
                                   {7, 0}, {1, 1}, {1, 9},  {9, 1},
                                   {2, 2}, {3, 17}, {17, 3}, {12, 12}};
  for (const DtwConfig& config : config_axes()) {
    for (const auto& shape : shapes) {
      const std::size_t n = shape[0], m = shape[1];
      for (double abandon : {kInf, 5.0, 0.5, 0.0}) {
        const DtwResult scalar = dtw(n, m, synth_cost, config, abandon);
        const DtwResult wave =
            dtw_wavefront(n, m, synth_cost, config, abandon);
        expect_results_equal(scalar, wave,
                             "n=" + std::to_string(n) + " m=" +
                                 std::to_string(m) + " w=" +
                                 std::to_string(config.window) + " abandon=" +
                                 std::to_string(abandon));
      }
    }
  }
}

/// A window narrower than |n - m| must be widened to keep the end cell
/// reachable — by both kernels, to the same effective band.
TEST(SimdKernel, NarrowWindowWidensIdentically) {
  DtwConfig config;
  config.window = 1;
  for (const auto& shape : {std::pair<std::size_t, std::size_t>{3, 20},
                            {20, 3},
                            {1, 15},
                            {2, 40}}) {
    const DtwResult scalar =
        dtw(shape.first, shape.second, synth_cost, config);
    const DtwResult wave =
        dtw_wavefront(shape.first, shape.second, synth_cost, config);
    expect_results_equal(scalar, wave,
                         "narrow n=" + std::to_string(shape.first) + " m=" +
                             std::to_string(shape.second));
  }
}

// ---------------------------------------------------------------------------
// Tri-kernel equality on real modeled sequences, both alphabets.

class SimdKernelCorpus : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::vector<CstBbs>();
    const ModelBuilder builder;
    const attacks::PocConfig poc;
    int picked = 0;
    for (const attacks::PocSpec& spec : attacks::all_pocs()) {
      if (picked++ % 3 != 0) continue;  // every third PoC: enough variety
      corpus_->push_back(builder.build(spec.build(poc), spec.family).sequence);
    }
    corpus_->push_back(CstBbs{});  // empty sequence rides along
    CstBbs single;                 // 1-element sequence
    single.push_back(corpus_->front().front());
    corpus_->push_back(single);
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static std::vector<CstBbs>* corpus_;
};

std::vector<CstBbs>* SimdKernelCorpus::corpus_ = nullptr;

/// String scalar (oracle) == string wavefront == compiled scalar ==
/// compiled wavefront, for every pair and every configuration axis.
TEST_F(SimdKernelCorpus, TriKernelDistancesBitEqual) {
  for (const DtwConfig& scalar_config : config_axes()) {
    DtwConfig wave_config = scalar_config;
    wave_config.kernel = DtwKernel::kWavefront;

    CompiledRepository repo(scalar_config.distance);
    for (const CstBbs& s : *corpus_) repo.add(s);

    for (std::size_t a = 0; a < corpus_->size(); ++a) {
      const CompiledTarget target = repo.compile_target((*corpus_)[a]);
      ElementDistanceMemo memo(target.unique_elements, repo.unique_elements());
      for (std::size_t b = 0; b < corpus_->size(); ++b) {
        const std::string what =
            "pair " + std::to_string(a) + "x" + std::to_string(b) +
            " window=" + std::to_string(scalar_config.window);
        const double oracle =
            cst_bbs_distance((*corpus_)[a], (*corpus_)[b], scalar_config);
        const double string_wave =
            cst_bbs_distance((*corpus_)[a], (*corpus_)[b], wave_config);
        const double compiled_scalar = compiled_cst_bbs_distance(
            target, repo, b, memo, scalar_config, nullptr);
        const double compiled_wave = compiled_cst_bbs_distance(
            target, repo, b, memo, wave_config, nullptr);
        EXPECT_EQ(score_bits(oracle), score_bits(string_wave))
            << what << ": string wavefront";
        EXPECT_EQ(score_bits(oracle), score_bits(compiled_scalar))
            << what << ": compiled scalar";
        EXPECT_EQ(score_bits(oracle), score_bits(compiled_wave))
            << what << ": compiled wavefront";
      }
    }
  }
}

/// bounded_dp under both kernels: same score bits, same PruneKind, over
/// cutoffs spanning never-prunes to always-prunes.
TEST_F(SimdKernelCorpus, BoundedDpEquivalentAcrossKernels) {
  for (const DtwConfig& scalar_config : config_axes()) {
    DtwConfig wave_config = scalar_config;
    wave_config.kernel = DtwKernel::kWavefront;
    for (const CstBbs& a : *corpus_) {
      for (const CstBbs& b : *corpus_) {
        const auto cost = [&](std::size_t i, std::size_t j) {
          return cst_distance(a[i], b[j], scalar_config.distance);
        };
        for (double d_cut : {kInf, 4.0, 0.25, 0.01}) {
          const BoundedScore s = detail::bounded_dp(a.size(), b.size(), cost,
                                                    d_cut, scalar_config);
          const BoundedScore w = detail::bounded_dp(a.size(), b.size(), cost,
                                                    d_cut, wave_config);
          EXPECT_EQ(score_bits(s.score), score_bits(w.score))
              << "d_cut=" << d_cut;
          EXPECT_EQ(static_cast<int>(s.pruned), static_cast<int>(w.pruned))
              << "d_cut=" << d_cut;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The bounded-DP empty-sequence bugfix.

/// Two empty sequences under path-averaged normalization used to wrap the
/// accumulated-cost limit through size_t(0 + 0 - 1): the score must be
/// the exact empty-vs-empty similarity regardless of cutoff, never
/// pruned, on both kernels.
TEST(SimdKernel, BoundedDpEmptySequencesAreExact) {
  const auto no_cost = [](std::size_t, std::size_t) { return 0.0; };
  for (const DtwConfig& base : config_axes()) {
    for (DtwKernel kernel : {DtwKernel::kScalar, DtwKernel::kWavefront}) {
      DtwConfig config = base;
      config.kernel = kernel;
      const double exact =
          detail::similarity_from_distance(0.0, config);  // D(empty,empty)=0
      for (double d_cut : {kInf, 1.0, 1e-6, 0.0}) {
        const BoundedScore s = detail::bounded_dp(0, 0, no_cost, d_cut, config);
        EXPECT_EQ(score_bits(exact), score_bits(s.score)) << "d_cut=" << d_cut;
        EXPECT_EQ(static_cast<int>(PruneKind::kNone),
                  static_cast<int>(s.pruned))
            << "d_cut=" << d_cut;
      }
      // Empty vs nonempty: O(1) exact as well (distance n + m, cost 1 per
      // unmatched element), never pruned, on every cutoff.
      const auto unit_cost = [](std::size_t, std::size_t) { return 1.0; };
      DtwResult r;
      r.distance = 5.0;
      r.path_length = 5;
      const double exact_5 = detail::similarity_from_distance(
          detail::finish_distance(r, 0, 5, config), config);
      for (double d_cut : {kInf, 1e-6}) {
        const BoundedScore s =
            detail::bounded_dp(0, 5, unit_cost, d_cut, config);
        EXPECT_EQ(score_bits(exact_5), score_bits(s.score))
            << "d_cut=" << d_cut;
        EXPECT_EQ(static_cast<int>(PruneKind::kNone),
                  static_cast<int>(s.pruned));
      }
    }
  }
}

/// The public bounded_similarity contract on empty inputs, for symmetry
/// with the internal check above.
TEST(SimdKernel, BoundedSimilarityEmptyInputsNeverPruned) {
  const CstBbs empty;
  for (double min_sim : {0.0, 0.45, 0.999}) {
    const BoundedScore s =
        bounded_similarity(empty, empty, min_sim, calibrated_dtw_config());
    EXPECT_EQ(score_bits(similarity(empty, empty, calibrated_dtw_config())),
              score_bits(s.score))
        << "min_sim=" << min_sim;
    EXPECT_EQ(static_cast<int>(PruneKind::kNone), static_cast<int>(s.pruned));
  }
}

// ---------------------------------------------------------------------------
// Counter accounting (the CellCountFlusher bugfix).

TEST(SimdKernel, DpCellCountersMatchAcrossKernels) {
  if (!support::Registry::compiled_in())
    GTEST_SKIP() << "built with SCAG_METRICS_OFF";
  support::Counter& cells = support::Registry::global().counter("dtw.dp_cells");
  DtwConfig config;
  config.window = 3;
  const std::uint64_t before_scalar = cells.value();
  dtw(10, 14, synth_cost, config);
  const std::uint64_t scalar_cells = cells.value() - before_scalar;
  const std::uint64_t before_wave = cells.value();
  dtw_wavefront(10, 14, synth_cost, config);
  const std::uint64_t wave_cells = cells.value() - before_wave;
  EXPECT_GT(scalar_cells, 0u);
  EXPECT_EQ(scalar_cells, wave_cells);
}

/// A deadline expiring mid-DP must still flush the cells computed so far:
/// the first row is computed (the cost functor stalls long enough for the
/// deadline to pass), the second row's check throws, and the counter must
/// have advanced by at least one full row.
TEST(SimdKernel, TimeoutStillFlushesCellCounters) {
  if (!support::Registry::compiled_in())
    GTEST_SKIP() << "built with SCAG_METRICS_OFF";
  support::Counter& cells = support::Registry::global().counter("dtw.dp_cells");
  for (int use_wavefront : {0, 1}) {
    DtwConfig config;
    config.deadline_ns = support::monotonic_ns() + 1'000'000;  // 1ms
    bool stalled = false;
    const auto stalling_cost = [&](std::size_t, std::size_t) {
      if (!stalled) {
        stalled = true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      return 0.5;
    };
    const std::uint64_t before = cells.value();
    const auto run = [&] {
      if (use_wavefront)
        dtw_wavefront(8, 8, stalling_cost, config);
      else
        dtw(8, 8, stalling_cost, config);
    };
    EXPECT_THROW(run(), ScanTimeoutError) << "wavefront=" << use_wavefront;
    EXPECT_GT(cells.value(), before)
        << "cells not flushed on timeout, wavefront=" << use_wavefront;
  }
}

/// The deadline check now covers the O(1) empty-sequence returns too: a
/// scan past its budget must not keep producing results.
TEST(SimdKernel, ExpiredDeadlineThrowsOnEmptyInputs) {
  DtwConfig config;
  config.deadline_ns = 1;  // epoch + 1ns: long past
  const auto no_cost = [](std::size_t, std::size_t) { return 0.0; };
  EXPECT_THROW(dtw(0, 0, no_cost, config), ScanTimeoutError);
  EXPECT_THROW(dtw(0, 5, no_cost, config), ScanTimeoutError);
  EXPECT_THROW(dtw_wavefront(0, 0, no_cost, config), ScanTimeoutError);
  EXPECT_THROW(dtw_wavefront(5, 0, no_cost, config), ScanTimeoutError);
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.

TEST(SimdKernel, BackendReportsAConcreteLevel) {
  const char* name = simd::level_name();
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "neon" ||
              std::string(name) == "avx2")
      << name;
  // diag_step is callable whatever the level: one 5-lane step, checked
  // against the documented per-lane semantics.
  const double diag[5] = {0.0, 1.0, kInf, 2.0, 3.0};
  const double sdiag[5] = {1.0, 2.0, 0.0, 3.0, 4.0};
  const double up[5] = {0.5, 2.0, 1.0, 2.0, kInf};
  const double sup[5] = {7.0, 8.0, 9.0, 10.0, 0.0};
  const double left[5] = {1.0, 0.5, kInf, 1.5, 2.5};
  const double sleft[5] = {11.0, 12.0, 0.0, 13.0, 14.0};
  const double cost[5] = {0.25, 0.25, 0.25, 0.25, 0.25};
  double out[5], sout[5];
  simd::diag_step()(diag, sdiag, up, sup, left, sleft, cost, out, sout, 5);
  for (int k = 0; k < 5; ++k) {
    double best = diag[k], s = sdiag[k];
    if (up[k] < best) {
      best = up[k];
      s = sup[k];
    }
    if (left[k] < best) {
      best = left[k];
      s = sleft[k];
    }
    EXPECT_EQ(score_bits(best + cost[k]), score_bits(out[k])) << "lane " << k;
    EXPECT_EQ(score_bits(s + 1.0), score_bits(sout[k])) << "lane " << k;
  }
}

/// use_simd() is a pure execution-strategy knob on the detector: scans
/// with it on and off produce bit-identical Detections (the full sweep
/// lives in the differential harness; this is the direct toggle check).
TEST_F(SimdKernelCorpus, DetectorToggleIsBitIdentical) {
  const ModelBuilder builder;
  const attacks::PocConfig poc;
  Detector detector(ModelConfig{}, calibrated_dtw_config(), 0.45);
  int picked = 0;
  for (const attacks::PocSpec& spec : attacks::all_pocs()) {
    if (picked++ % 4 != 0) continue;
    detector.enroll(spec.build(poc), spec.family);
  }
  ASSERT_TRUE(detector.use_simd());  // default on
  for (const CstBbs& target : *corpus_) {
    detector.set_use_simd(true);
    const Detection with_simd = detector.scan(target);
    detector.set_use_simd(false);
    const Detection without = detector.scan(target);
    EXPECT_EQ(with_simd.verdict, without.verdict);
    EXPECT_EQ(score_bits(with_simd.best_score), score_bits(without.best_score));
    ASSERT_EQ(with_simd.scores.size(), without.scores.size());
    for (std::size_t i = 0; i < with_simd.scores.size(); ++i) {
      EXPECT_EQ(with_simd.scores[i].model_name, without.scores[i].model_name);
      EXPECT_EQ(score_bits(with_simd.scores[i].score),
                score_bits(without.scores[i].score));
    }
  }
  detector.set_use_simd(true);
}

}  // namespace
}  // namespace scag::core
