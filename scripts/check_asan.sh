#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer pass over the
# serialization and metrics test binaries (the fuzz suite feeds mutated
# repository text to the parser, so memory errors would surface here
# first). Uses a dedicated build tree so the regular build stays
# uninstrumented.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-asan
ASAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g -O1"

# ASan needs a runtime the kernel/container actually supports (shadow
# memory mmap, ptrace for leak detection). Probe with a trivial program
# first and skip gracefully where it cannot run, so this script stays
# usable in constrained CI sandboxes.
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cpp" <<'EOF'
#include <vector>
int main() {
  std::vector<int> v(8, 1);
  int sum = 0;
  for (int x : v) sum += x;
  return sum == 8 ? 0 : 1;
}
EOF
if ! c++ $ASAN_FLAGS "$probe_dir/probe.cpp" -o "$probe_dir/probe" 2>/dev/null \
   || ! ASAN_OPTIONS=detect_leaks=0 "$probe_dir/probe" >/dev/null 2>&1; then
  echo "check_asan: AddressSanitizer unavailable in this environment; skipping."
  exit 0
fi

cmake -B "$BUILD" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$ASAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$BUILD" --target test_serialize test_fuzz test_metrics \
  test_failpoints test_scagctl_cli test_lower_bounds test_scan_index \
  test_simd_kernel test_store test_scenarios test_events scagctl \
  -j"$(nproc)"

# Leak detection needs ptrace, which many containers deny; the point here
# is bounds/UB checking of the parser, metrics, and failure paths (the
# fault-labeled suites route every error branch under the sanitizers).
export ASAN_OPTIONS="detect_leaks=0 halt_on_error=1"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
"$BUILD/tests/test_serialize"
"$BUILD/tests/test_fuzz"
"$BUILD/tests/test_metrics"
"$BUILD/tests/test_failpoints"
"$BUILD/tests/test_scagctl_cli"
# The lower-bound arithmetic and the scan cascade: bounds code indexes
# envelope arrays and the cascade walks caller-supplied visit orders, so
# out-of-bounds mistakes would surface here first.
"$BUILD/tests/test_lower_bounds"
"$BUILD/tests/test_scan_index"
# The wavefront kernel: padded ghost lanes, rotating diagonal scratch,
# and the vectorized memo gather all index raw buffers, so off-by-one
# lane math would surface here first.
"$BUILD/tests/test_simd_kernel"
# The zero-copy store reader: every typed view is a raw pointer into the
# mapped image and the hostile-input battery walks truncated/corrupted
# section tables, so any validation gap is an out-of-bounds read here.
"$BUILD/tests/test_store"
# The scenario matrix: multi-spy PoC generation, the trace merge's
# segment rebasing, and the SHARP eviction path all do index arithmetic
# over concatenated buffers, so off-by-one segment math (and the fuzz
# suite's FuzzMultiSpy rounds above) would surface here first.
"$BUILD/tests/test_scenarios"
# The observability plane: the JSONL event parser walks untrusted journal
# text byte by byte, the Prometheus parser/validator index rendered
# exposition, and the flight recorder snapshots fixed-size tails — all
# raw-buffer arithmetic that belongs under ASan/UBSan.
"$BUILD/tests/test_events"
echo "ASAN CHECKS PASSED"
