#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-sensitive test binaries
# (thread pool + parallel batch-scan engine + DTW property suite).
# Uses a dedicated build tree so the regular build stays uninstrumented.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-tsan
TSAN_FLAGS="-fsanitize=thread -g -O1"

# TSan needs a runtime the kernel/container actually supports (it mmaps a
# huge shadow and requires ASLR compatibility). Probe with a trivial
# program first and skip gracefully where it cannot run, so this script
# stays usable in constrained CI sandboxes.
probe_dir="$(mktemp -d)"
trap 'rm -rf "$probe_dir"' EXIT
cat > "$probe_dir/probe.cpp" <<'EOF'
#include <thread>
int main() {
  int x = 0;
  std::thread t([&] { x = 1; });
  t.join();
  return x == 1 ? 0 : 1;
}
EOF
if ! c++ $TSAN_FLAGS "$probe_dir/probe.cpp" -o "$probe_dir/probe" 2>/dev/null \
   || ! "$probe_dir/probe" >/dev/null 2>&1; then
  echo "check_tsan: ThreadSanitizer unavailable in this environment; skipping."
  exit 0
fi

cmake -B "$BUILD" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD" --target test_parallel_scan test_dtw_properties \
  test_compiled_kernel test_failpoints test_scan_index test_simd_kernel \
  test_scenarios test_events -j"$(nproc)"

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
"$BUILD/tests/test_parallel_scan"
"$BUILD/tests/test_dtw_properties"
"$BUILD/tests/test_compiled_kernel"
# The failpoint harness under TSan: arming/disarming races against the
# wait-free hit() fast path and against pool workers mid-job.
"$BUILD/tests/test_failpoints"
# The indexed batch scan: concurrent target rows share the read-only
# triage index and bump the cascade's atomic stage counters.
"$BUILD/tests/test_scan_index"
# The wavefront kernel's thread_local scratch plus the shared
# ElementDistanceMemo: the vectorized gather reads cells concurrent scan
# threads fill through relaxed atomics.
"$BUILD/tests/test_simd_kernel"
# The scenario differential battery drives BatchDetector over every grid
# cell's target at 1/2/8 threads, so the scan pool's work distribution is
# exercised with real multi-spy traces rather than synthetic corpora.
"$BUILD/tests/test_scenarios"
# The event journal's lock-free MPSC ring: the conservation stress pushes
# from 1/2/8 producers against a concurrent consumer while the writer
# thread drains, so the seq-number handoff and the drop counters are
# exercised under real contention.
"$BUILD/tests/test_events"
echo "TSAN CHECKS PASSED"
