#!/usr/bin/env bash
# Full verification: configure, build, run every test and every
# table/figure reproduction at a reduced scale. CI entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Tri-kernel differential under both SIMD dispatch modes: the wavefront
# suites assert bit-identity against the scalar row kernel whatever the
# SCAG_SIMD escape hatch says (0 also proves the scalar fallback path a
# no-AVX2 host would take end to end).
for simd in 0 1; do
  SCAG_SIMD="$simd" build/tests/test_simd_kernel
  SCAG_SIMD="$simd" build/tests/test_scan_index
done

# Data-race check of the parallel batch-scan engine (separate build tree;
# skips itself where TSan cannot run).
scripts/check_tsan.sh

# Memory-safety/UB check of the serializer fuzz, golden-format, and
# metrics suites (separate build tree; skips itself where ASan cannot
# run).
scripts/check_asan.sh

# The metrics layer must also compile (and its tests pass) when compiled
# out with -DSCAG_METRICS_OFF — including the explain layer, which shares
# the Tracer plumbing, and the event journal / flight recorder, whose
# emit paths must collapse to true no-ops in that build.
cmake -B build-metrics-off -G Ninja -DSCAG_METRICS_OFF=ON
cmake --build build-metrics-off --target test_metrics test_explain \
  test_events scagctl
build-metrics-off/tests/test_metrics
build-metrics-off/tests/test_explain
build-metrics-off/tests/test_events
build-metrics-off/tools/scagctl metrics-demo

# Failpoint sweep smoke through the CLI: every library failpoint, armed
# for real via --failpoints, must yield a clean one-line nonzero-exit
# failure (or a successful degraded scan for the resilience sites) —
# never a crash. The in-process harness (test_failpoints) covers the
# semantics; this proves the end-user arming path works in a shipped
# binary.
build/tools/scagctl export FR-IAIK build/fp_smoke_poc.s
build/tools/scagctl build-repo build/fp_smoke.repo
for fp_spec in \
    'serialize.load.open=error' \
    'serialize.load.read=throw' \
    'scagctl.load_target=throw' \
    'detector.scan=throw' \
    'cache.access=throw' \
    'cpu.step=error@100'; do
  if SCAG_FAILPOINTS="$fp_spec" \
      build/tools/scagctl scan build/fp_smoke.repo build/fp_smoke_poc.s \
      >build/fp_smoke.out 2>&1; then
    echo "failpoint smoke: '$fp_spec' unexpectedly succeeded"; exit 1
  fi
  if grep -Eq 'terminate|Aborted|Segmentation' build/fp_smoke.out; then
    echo "failpoint smoke: '$fp_spec' crashed:"; cat build/fp_smoke.out; exit 1
  fi
  grep -q 'scagctl: ' build/fp_smoke.out || {
    echo "failpoint smoke: '$fp_spec' exited nonzero without a diagnostic"
    cat build/fp_smoke.out; exit 1
  }
done
# The degrading sites must NOT fail the scan: the pool falls back to a
# serial drain, the compile step to the string kernels, and the verdict
# (attack => exit 1) is unchanged.
for fp_spec in 'pool.enqueue=throw' 'compiled.compile_target=throw'; do
  SCAG_FAILPOINTS="$fp_spec" \
    build/tools/scagctl scan build/fp_smoke.repo build/fp_smoke_poc.s \
    >build/fp_smoke.out 2>&1 || [ $? -eq 1 ] || {
      echo "failpoint smoke: '$fp_spec' broke the degraded scan"
      cat build/fp_smoke.out; exit 1
    }
  grep -q "Verdict" build/fp_smoke.out || {
    echo "failpoint smoke: '$fp_spec' produced no verdict"
    cat build/fp_smoke.out; exit 1
  }
done

# The fault-injection layer must also compile out cleanly with
# -DSCAG_FAILPOINTS_OFF: same tests pass, --failpoints warns + ignores,
# and the failpoint harness skips itself.
cmake -B build-fp-off -G Ninja -DSCAG_FAILPOINTS_OFF=ON
cmake --build build-fp-off --target test_failpoints test_parallel_scan \
  test_golden scagctl
build-fp-off/tests/test_failpoints
build-fp-off/tests/test_parallel_scan
# The golden fixture compares scores bit-exactly, so passing here proves
# the compiled-out build is bit-identical to the instrumented one.
build-fp-off/tests/test_golden
build-fp-off/tools/scagctl --failpoints='cpu.step=throw' list >/dev/null

# Explainability smoke through the CLI: `scagctl explain` must render the
# alignment evidence tables, `--explain=` must emit the versioned JSON
# report, and a global `--trace=` must leave a Chrome-trace file that
# Perfetto can load (schema details in docs/observability.md).
build/tools/scagctl --trace=build/explain_smoke_trace.json \
  explain --json=build/explain_smoke.json \
  build/fp_smoke.repo build/fp_smoke_poc.s >build/explain_smoke.out
grep -q 'Scan explanation' build/explain_smoke.out
grep -q 'Rationale' build/explain_smoke.out
grep -q '"schema":"scag-scan-report-v1"' build/explain_smoke.json
grep -q '"traceEvents"' build/explain_smoke_trace.json
grep -q '"explain.scan"' build/explain_smoke_trace.json
# scan --explain= writes the same report without changing the verdict exit.
if build/tools/scagctl scan --explain=build/scan_smoke.json \
    build/fp_smoke.repo build/fp_smoke_poc.s >/dev/null; then
  echo "explain smoke: scan of an attack PoC unexpectedly exited 0"; exit 1
fi
grep -q '"schema":"scag-scan-report-v1"' build/scan_smoke.json

# Observability smoke through the CLI: a scan under --journal= must
# stream the scag-events-v1 journal (schema header, verdict event,
# accounting summary) without changing the verdict exit, `events tail`
# must read it back filtered, `scan --prom=` must leave a Prometheus
# 0.0.4 snapshot that `top` can render, and the stats serve/get pair
# must round-trip that exposition over a Unix socket.
build/tools/scagctl --journal=build/events_smoke.jsonl \
  scan --prom=build/events_smoke.prom \
  build/fp_smoke.repo build/fp_smoke_poc.s \
  >build/events_smoke.out || [ $? -eq 1 ]
grep -q 'wrote event journal' build/events_smoke.out
head -1 build/events_smoke.jsonl | grep -q '"schema":"scag-events-v1"'
grep -q '"type":"scan-start"' build/events_smoke.jsonl
grep -q '"type":"scan-verdict"' build/events_smoke.jsonl
grep -q '"summary":true' build/events_smoke.jsonl
build/tools/scagctl events tail --once --type=scan-verdict \
  build/events_smoke.jsonl >build/events_tail.out
grep -q '"type":"scan-verdict"' build/events_tail.out
if grep -q '"type":"scan-start"' build/events_tail.out; then
  echo "events smoke: tail --type=scan-verdict leaked other event types"
  exit 1
fi
grep -q '# TYPE scag_scan_requests_total counter' build/events_smoke.prom
grep -q 'scag_scan_latency_ns_bucket{le="+Inf"}' build/events_smoke.prom
build/tools/scagctl top --once build/events_smoke.prom >build/events_top.out
grep -q 'scag top' build/events_top.out
grep -q 'prune ratio' build/events_top.out
rm -f build/events_smoke.sock
build/tools/scagctl stats serve --socket=build/events_smoke.sock \
  --requests=1 --warm >build/events_serve.out 2>&1 &
events_serve_pid=$!
for _ in $(seq 1 100); do
  [ -S build/events_smoke.sock ] && break
  sleep 0.1
done
build/tools/scagctl stats get --socket=build/events_smoke.sock \
  >build/events_get.out
wait "$events_serve_pid"
grep -q '# TYPE scag_' build/events_get.out
grep -q 'scag_batch_pairs_total' build/events_get.out

# Compiled-kernel smoke: the throughput bench must verify bit-identical
# scans (nonzero exit otherwise) and its JSON report — written to the
# repo root via the shared scag-bench-v1 emitter — must show the memo
# cache and the compile timer actually populated.
build/bench/bench_scan_throughput 4 BENCH_scan.json
grep -q '"schema": "scag-bench-v1"' BENCH_scan.json
grep -Eq '"memo_hits": *[1-9][0-9]*' BENCH_scan.json
grep -Eq '"compile_ns": *[1-9][0-9]*' BENCH_scan.json
grep -Eq '"steady_state_allocs": *0' BENCH_scan.json
grep -Eq '"equivalent": *true' BENCH_scan.json
# The wavefront pass must have run (level + survivor-DP timing populated)
# and matched the scalar kernel bit-for-bit.
grep -Eq '"simd_level": *"(scalar|neon|avx2)"' BENCH_scan.json
grep -Eq '"simd_dp_speedup": *[0-9]' BENCH_scan.json
grep -Eq '"simd_equivalent": *true' BENCH_scan.json

# Scan-cascade smoke: the repository-size bench verifies the triage
# cascade verdict-equivalent against the exhaustive scan (nonzero exit
# otherwise) and its scag-bench-v1 report must carry the per-stage prune
# attribution for the largest sweep point.
build/bench/bench_repository_size 8 BENCH_repository.json
grep -q '"schema": "scag-bench-v1"' BENCH_repository.json
grep -Eq '"equivalent": *true' BENCH_repository.json
grep -Eq '"simd_equivalent": *true' BENCH_repository.json
grep -Eq '"size48_kim_pruned": *[0-9]+' BENCH_repository.json
grep -Eq '"size48_exact_per_scan": *[0-9]' BENCH_repository.json
# The load-path pass must prove the store-backed scan verdict-equivalent
# and record the open-to-first-verdict speedup of the mmap store.
grep -Eq '"store_load_speedup": *[0-9]' BENCH_repository.json
grep -Eq '"store_equivalent": *true' BENCH_repository.json

# Zero-copy store smoke through the CLI: pack the text repository into a
# scag-store-v1 image, audit it (header + checksums), prove the unpack
# round-trip bit-exact, and prove a store-backed scan prints the same
# report as the text-loaded scan. A truncated image must die with the
# standard one-line diagnostic, never a crash.
build/tools/scagctl repo pack build/fp_smoke.repo build/store_smoke.store
build/tools/scagctl repo info build/store_smoke.store >build/store_smoke.out
grep -q 'scag-store-v1' build/store_smoke.out
grep -q 'checksums OK' build/store_smoke.out
build/tools/scagctl repo unpack build/store_smoke.store build/store_smoke.repo
cmp build/fp_smoke.repo build/store_smoke.repo
if build/tools/scagctl scan build/store_smoke.store build/fp_smoke_poc.s \
    >build/store_scan.out; then
  echo "store smoke: scan of an attack PoC unexpectedly exited 0"; exit 1
fi
build/tools/scagctl scan build/fp_smoke.repo build/fp_smoke_poc.s \
  >build/text_scan.out || [ $? -eq 1 ]
if ! diff <(sed -n '/Scan report/,$p' build/store_scan.out) \
          <(sed -n '/Scan report/,$p' build/text_scan.out); then
  echo "store smoke: store-backed scan report diverged from text-loaded"
  exit 1
fi
head -c 100 build/store_smoke.store >build/store_trunc.store
if build/tools/scagctl repo info build/store_trunc.store \
    >build/store_trunc.out 2>&1; then
  echo "store smoke: truncated store unexpectedly accepted"; exit 1
fi
if grep -Eq 'terminate|Aborted|Segmentation' build/store_trunc.out; then
  echo "store smoke: truncated store crashed the reader:"
  cat build/store_trunc.out; exit 1
fi
grep -q 'scagctl: ' build/store_trunc.out

# Scenario-matrix smoke: the full attack x defense x noise x spy-count
# grid (bench_table5_scenarios) asserts every cell verdict bit-identical
# to the exhaustive string-kernel scan AND the triage-index path (nonzero
# exit on divergence). Its scag-bench-v1 report must carry the grid
# shape, the equivalence bit, the SHARP alarm asymmetry (Prime+Probe
# trips the defended LLC, Flush+Reload never does), and the lone-spy
# score floor of the cooperative attacks.
build/bench/bench_table5_scenarios 2 BENCH_scenarios.json
grep -q '"schema": "scag-bench-v1"' BENCH_scenarios.json
grep -Eq '"grid": *"full"' BENCH_scenarios.json
grep -Eq '"cells": *60' BENCH_scenarios.json
grep -Eq '"equivalent": *true' BENCH_scenarios.json
grep -Eq '"pp_iaik__sharp__n0__s1_alarms": *[1-9]' BENCH_scenarios.json
grep -Eq '"fr_iaik__sharp__n0__s1_alarms": *0' BENCH_scenarios.json
grep -Eq '"multispy_pp__sharp__n0__s2_detect": *1' BENCH_scenarios.json
grep -Eq '"multispy_fr__none__n0__s4_recover": *1' BENCH_scenarios.json
grep -Eq '"min_spy_score": *[0-9]' BENCH_scenarios.json

N="${1:-60}"   # samples per attack type for the bench pass
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $b ====="
  case "$(basename "$b")" in
    # Plain double (seconds): the suffixed "0.05s" form is only understood
    # by google-benchmark >= 1.8, the bare form by every version.
    bench_micro) "$b" --benchmark_min_time=0.05 ;;
    bench_table1*|bench_table5*) "$b" ;;
    bench_timecost) "$b" "$N" BENCH_timecost.json ;;
    bench_scan_throughput) "$b" "$N" BENCH_scan.json ;;
    bench_repository_size) "$b" "$N" BENCH_repository.json ;;
    *) "$b" "$N" ;;
  esac
done
echo "ALL CHECKS PASSED"
