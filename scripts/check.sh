#!/usr/bin/env bash
# Full verification: configure, build, run every test and every
# table/figure reproduction at a reduced scale. CI entry point.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Data-race check of the parallel batch-scan engine (separate build tree;
# skips itself where TSan cannot run).
scripts/check_tsan.sh

# Memory-safety/UB check of the serializer fuzz, golden-format, and
# metrics suites (separate build tree; skips itself where ASan cannot
# run).
scripts/check_asan.sh

# The metrics layer must also compile (and its tests pass) when compiled
# out with -DSCAG_METRICS_OFF.
cmake -B build-metrics-off -G Ninja -DSCAG_METRICS_OFF=ON
cmake --build build-metrics-off --target test_metrics scagctl
build-metrics-off/tests/test_metrics
build-metrics-off/tools/scagctl metrics-demo

# Compiled-kernel smoke: the throughput bench must verify bit-identical
# scans (nonzero exit otherwise) and its JSON report must show the memo
# cache and the compile timer actually populated.
build/bench/bench_scan_throughput 4 build/BENCH_scan.json
grep -Eq '"memo_hits": *[1-9][0-9]*' build/BENCH_scan.json
grep -Eq '"compile_ns": *[1-9][0-9]*' build/BENCH_scan.json
grep -Eq '"steady_state_allocs": *0' build/BENCH_scan.json
grep -Eq '"equivalent": *true' build/BENCH_scan.json

N="${1:-60}"   # samples per attack type for the bench pass
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $b ====="
  case "$(basename "$b")" in
    # Plain double (seconds): the suffixed "0.05s" form is only understood
    # by google-benchmark >= 1.8, the bare form by every version.
    bench_micro) "$b" --benchmark_min_time=0.05 ;;
    bench_table1*|bench_table5*|bench_timecost) "$b" ;;
    bench_scan_throughput) "$b" "$N" build/BENCH_scan.json ;;
    *) "$b" "$N" ;;
  esac
done
echo "ALL CHECKS PASSED"
